package services

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/lsh"
	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/sim"
)

// HDSearch cost-model constants, calibrated for the paper's ≈400 µs–1.5 ms
// end-to-end latency band (Fig. 4). The bucket's search cost is data
// dependent: it scales with the number of LSH candidates the real index
// actually scores for the query.
const (
	hdMidtierParse  = 45 * time.Microsecond
	hdMidtierMerge  = 70 * time.Microsecond
	hdBucketBase    = 180 * time.Microsecond
	hdBucketPerCand = 90 * time.Nanosecond
	hdSigma         = 0.15
)

// HDSearch models the MicroSuite image-similarity service (§IV-B): a
// three-tier structure (client → midtier → bucket) where the bucket runs
// nearest-neighbour queries against a real LSH index. The paper deploys
// each tier on its own machine; the midtier↔bucket hop crosses a rack link.
type HDSearch struct {
	midtierM *hw.Machine
	bucketM  *hw.Machine
	midtier  *Tier
	bucket   *Tier
	index    *lsh.Index
	link     *netmodel.Link // midtier↔bucket, per-run jitter stream
	queryGen *rng.Stream
	dataset  []lsh.Vector
	topK     int
}

// HDSearchConfig configures the service.
type HDSearchConfig struct {
	ServerHW       hw.Config
	MidtierWorkers int
	BucketWorkers  int
	DatasetSize    int
	Dim            int
	TopK           int
	// HiccupRate / HiccupMean tune the background-interference model on
	// both tiers (zero values keep the calibrated defaults).
	HiccupRate float64
	HiccupMean time.Duration
}

// DefaultHDSearchConfig follows the MicroSuite deployment at a dataset
// scale that keeps index construction fast.
func DefaultHDSearchConfig() HDSearchConfig {
	return HDSearchConfig{
		ServerHW:       hw.ServerBaselineConfig(),
		MidtierWorkers: 8,
		BucketWorkers:  10,
		DatasetSize:    20_000,
		Dim:            64,
		TopK:           10,
	}
}

// NewHDSearch builds the service and its LSH index.
func NewHDSearch(cfg HDSearchConfig) (*HDSearch, error) {
	if cfg.MidtierWorkers < 1 || cfg.BucketWorkers < 1 {
		return nil, fmt.Errorf("services: hdsearch needs ≥1 worker per tier")
	}
	if cfg.DatasetSize < 1 || cfg.Dim < 1 || cfg.TopK < 1 {
		return nil, fmt.Errorf("services: invalid hdsearch dataset config %+v", cfg)
	}
	midtierM, err := hw.NewMachine("hdsearch-midtier", cfg.MidtierWorkers, cfg.ServerHW)
	if err != nil {
		return nil, err
	}
	bucketM, err := hw.NewMachine("hdsearch-bucket", cfg.BucketWorkers, cfg.ServerHW)
	if err != nil {
		return nil, err
	}
	mcores := make([]int, cfg.MidtierWorkers)
	for i := range mcores {
		mcores[i] = i
	}
	bcores := make([]int, cfg.BucketWorkers)
	for i := range bcores {
		bcores[i] = i
	}
	midtier, err := NewTier(TierConfig{Name: "midtier", Machine: midtierM, Cores: mcores, Hiccups: true, Contention: 0.03,
		HiccupRatePerSec: cfg.HiccupRate, HiccupMeanDuration: cfg.HiccupMean})
	if err != nil {
		return nil, err
	}
	bucket, err := NewTier(TierConfig{Name: "bucket", Machine: bucketM, Cores: bcores, Hiccups: true, Contention: 0.04,
		HiccupRatePerSec: cfg.HiccupRate, HiccupMeanDuration: cfg.HiccupMean})
	if err != nil {
		return nil, err
	}
	index, err := lsh.New(lsh.Config{Dim: cfg.Dim, Tables: 8, Bits: 12, Seed: 777})
	if err != nil {
		return nil, err
	}
	dataset := lsh.GenerateDataset(cfg.DatasetSize, cfg.Dim, 32, 778)
	for i, v := range dataset {
		if err := index.Add(fmt.Sprintf("img-%d", i), v); err != nil {
			return nil, err
		}
	}
	return &HDSearch{
		midtierM: midtierM,
		bucketM:  bucketM,
		midtier:  midtier,
		bucket:   bucket,
		index:    index,
		dataset:  dataset,
		topK:     cfg.TopK,
	}, nil
}

// Name implements Backend.
func (h *HDSearch) Name() string { return "hdsearch" }

// Machines implements Backend.
func (h *HDSearch) Machines() []*hw.Machine { return []*hw.Machine{h.midtierM, h.bucketM} }

// MeanServiceTime implements Backend (bucket is the bottleneck tier).
func (h *HDSearch) MeanServiceTime() float64 {
	return (hdBucketBase + 2000*hdBucketPerCand).Seconds()
}

// NewQuery draws a feature-vector query near the dataset distribution.
// Exposed so generators create realistic payloads.
func (h *HDSearch) NewQuery(stream *rng.Stream) lsh.Vector {
	base := h.dataset[stream.Intn(len(h.dataset))]
	q := make(lsh.Vector, len(base))
	for i := range q {
		q[i] = base[i] + stream.Normal(0, 0.15)
	}
	return q
}

// TierStats implements TierStatsProvider.
func (h *HDSearch) TierStats() []TierStats {
	return []TierStats{h.midtier.Stats(), h.bucket.Stats()}
}

// Occupancy implements OccupancyProvider (allocation-free tick sampling).
func (h *HDSearch) Occupancy() (time.Duration, int) {
	return h.midtier.BusyTime() + h.bucket.BusyTime(), h.midtier.Workers() + h.bucket.Workers()
}

// ResetRun implements Backend.
func (h *HDSearch) ResetRun(engine *sim.Engine, stream *rng.Stream) {
	h.midtier.ResetRun(engine, stream.Split())
	h.bucket.ResetRun(engine, stream.Split())
	h.queryGen = stream.Split()
	link, err := netmodel.New(netmodel.DefaultConfig(), stream.Split())
	if err != nil {
		panic(err) // static config cannot fail
	}
	h.link = link
}

// StartRun implements Backend.
func (h *HDSearch) StartRun(end sim.Time) {
	h.midtier.StartRun(end)
	h.bucket.StartRun(end)
}

// Crash implements Crasher. Requests mid-flight on the internal
// midtier↔bucket link fail when they land on the dark tier.
func (h *HDSearch) Crash(now sim.Time) {
	h.midtier.Crash(now)
	h.bucket.Crash(now)
}

// Restart implements Crasher.
func (h *HDSearch) Restart(now sim.Time) {
	h.midtier.Restart(now)
	h.bucket.Restart(now)
}

// SetDegrade implements Degrader.
func (h *HDSearch) SetDegrade(d *faults.DegradeSchedule) {
	h.midtier.SetDegrade(d)
	h.bucket.SetDegrade(d)
}

// HDSearch per-request state machine stages (Request.Stage). Each request
// walks parse → search → merge; the in-flight hop lives on the pooled
// request instead of a closure chain, and the midtier↔bucket RPC crossings
// are typed link deliveries.
const (
	hdStageParse  int = iota // midtier parses the query
	hdStageSearch            // bucket runs the LSH query
	hdStageMerge             // midtier merges and replies
)

// Arrive implements Backend: parse on the midtier, search on the bucket
// (real LSH query), merge back on the midtier, then respond. The payload
// must be an lsh.Vector query.
func (h *HDSearch) Arrive(req *Request, now sim.Time) {
	if _, ok := req.Payload.(lsh.Vector); !ok {
		panic(fmt.Sprintf("services: hdsearch got payload %T", req.Payload))
	}
	req.ServerArrive = now
	req.Stage = hdStageParse

	parseCost := time.Duration(float64(hdMidtierParse)*h.midtier.Noise(hdSigma)) + h.midtier.StackCost()
	h.midtier.Submit(now, parseCost, req, h)
}

// JobDone implements JobSink: a tier finished the request's current stage.
func (h *HDSearch) JobDone(end sim.Time, req *Request) {
	switch req.Stage {
	case hdStageParse:
		// Midtier → bucket RPC.
		q := req.Payload.(lsh.Vector)
		req.Stage = hdStageSearch
		h.link.Deliver(h.midtier.engine, end, len(q)*8, h, sim.EventArg{Ptr: req})
	case hdStageSearch:
		// Bucket → midtier response, then merge and reply. Scratch holds
		// the result count the search stage produced.
		req.Stage = hdStageMerge
		h.link.Deliver(h.bucket.engine, end, int(req.Scratch)*32, h, sim.EventArg{Ptr: req})
	case hdStageMerge:
		req.ResponseBytes = 64 + int(req.Scratch)*48
		req.complete(end)
	default:
		panic(fmt.Sprintf("services: hdsearch job done in unknown stage %d", req.Stage))
	}
}

// OnEvent implements sim.EventSink: a request cleared the midtier↔bucket
// link and enters its next stage's tier.
func (h *HDSearch) OnEvent(now sim.Time, arg sim.EventArg) {
	req := arg.Ptr.(*Request)
	switch req.Stage {
	case hdStageSearch:
		q := req.Payload.(lsh.Vector)
		results, stats, err := h.index.Query(q, h.topK)
		if err != nil {
			panic(fmt.Sprintf("services: hdsearch query failed: %v", err))
		}
		req.Scratch = int64(len(results))
		searchCost := hdBucketBase + time.Duration(stats.Candidates)*hdBucketPerCand
		searchCost = time.Duration(float64(searchCost)*h.bucket.Noise(hdSigma)) + h.bucket.StackCost()
		h.bucket.Submit(now, searchCost, req, h)
	case hdStageMerge:
		mergeCost := time.Duration(float64(hdMidtierMerge)*h.midtier.Noise(hdSigma)) + h.midtier.StackCost()
		h.midtier.Submit(now, mergeCost, req, h)
	default:
		panic(fmt.Sprintf("services: hdsearch delivery in unknown stage %d", req.Stage))
	}
}
