package services

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/lsh"
	"repro/internal/netmodel"
	"repro/internal/rng"
	"repro/internal/sim"
)

// HDSearch cost-model constants, calibrated for the paper's ≈400 µs–1.5 ms
// end-to-end latency band (Fig. 4). The bucket's search cost is data
// dependent: it scales with the number of LSH candidates the real index
// actually scores for the query.
const (
	hdMidtierParse  = 45 * time.Microsecond
	hdMidtierMerge  = 70 * time.Microsecond
	hdBucketBase    = 180 * time.Microsecond
	hdBucketPerCand = 90 * time.Nanosecond
	hdSigma         = 0.15
)

// HDSearch models the MicroSuite image-similarity service (§IV-B): a
// three-tier structure (client → midtier → bucket) where the bucket runs
// nearest-neighbour queries against a real LSH index. The paper deploys
// each tier on its own machine; the midtier↔bucket hop crosses a rack link.
type HDSearch struct {
	midtierM *hw.Machine
	bucketM  *hw.Machine
	midtier  *Tier
	bucket   *Tier
	index    *lsh.Index
	link     *netmodel.Link // midtier↔bucket, per-run jitter stream
	queryGen *rng.Stream
	dataset  []lsh.Vector
	topK     int
}

// HDSearchConfig configures the service.
type HDSearchConfig struct {
	ServerHW       hw.Config
	MidtierWorkers int
	BucketWorkers  int
	DatasetSize    int
	Dim            int
	TopK           int
}

// DefaultHDSearchConfig follows the MicroSuite deployment at a dataset
// scale that keeps index construction fast.
func DefaultHDSearchConfig() HDSearchConfig {
	return HDSearchConfig{
		ServerHW:       hw.ServerBaselineConfig(),
		MidtierWorkers: 8,
		BucketWorkers:  10,
		DatasetSize:    20_000,
		Dim:            64,
		TopK:           10,
	}
}

// NewHDSearch builds the service and its LSH index.
func NewHDSearch(cfg HDSearchConfig) (*HDSearch, error) {
	if cfg.MidtierWorkers < 1 || cfg.BucketWorkers < 1 {
		return nil, fmt.Errorf("services: hdsearch needs ≥1 worker per tier")
	}
	if cfg.DatasetSize < 1 || cfg.Dim < 1 || cfg.TopK < 1 {
		return nil, fmt.Errorf("services: invalid hdsearch dataset config %+v", cfg)
	}
	midtierM, err := hw.NewMachine("hdsearch-midtier", cfg.MidtierWorkers, cfg.ServerHW)
	if err != nil {
		return nil, err
	}
	bucketM, err := hw.NewMachine("hdsearch-bucket", cfg.BucketWorkers, cfg.ServerHW)
	if err != nil {
		return nil, err
	}
	mcores := make([]int, cfg.MidtierWorkers)
	for i := range mcores {
		mcores[i] = i
	}
	bcores := make([]int, cfg.BucketWorkers)
	for i := range bcores {
		bcores[i] = i
	}
	midtier, err := NewTier(TierConfig{Name: "midtier", Machine: midtierM, Cores: mcores, Hiccups: true, Contention: 0.03})
	if err != nil {
		return nil, err
	}
	bucket, err := NewTier(TierConfig{Name: "bucket", Machine: bucketM, Cores: bcores, Hiccups: true, Contention: 0.04})
	if err != nil {
		return nil, err
	}
	index, err := lsh.New(lsh.Config{Dim: cfg.Dim, Tables: 8, Bits: 12, Seed: 777})
	if err != nil {
		return nil, err
	}
	dataset := lsh.GenerateDataset(cfg.DatasetSize, cfg.Dim, 32, 778)
	for i, v := range dataset {
		if err := index.Add(fmt.Sprintf("img-%d", i), v); err != nil {
			return nil, err
		}
	}
	return &HDSearch{
		midtierM: midtierM,
		bucketM:  bucketM,
		midtier:  midtier,
		bucket:   bucket,
		index:    index,
		dataset:  dataset,
		topK:     cfg.TopK,
	}, nil
}

// Name implements Backend.
func (h *HDSearch) Name() string { return "hdsearch" }

// Machines implements Backend.
func (h *HDSearch) Machines() []*hw.Machine { return []*hw.Machine{h.midtierM, h.bucketM} }

// MeanServiceTime implements Backend (bucket is the bottleneck tier).
func (h *HDSearch) MeanServiceTime() float64 {
	return (hdBucketBase + 2000*hdBucketPerCand).Seconds()
}

// NewQuery draws a feature-vector query near the dataset distribution.
// Exposed so generators create realistic payloads.
func (h *HDSearch) NewQuery(stream *rng.Stream) lsh.Vector {
	base := h.dataset[stream.Intn(len(h.dataset))]
	q := make(lsh.Vector, len(base))
	for i := range q {
		q[i] = base[i] + stream.Normal(0, 0.15)
	}
	return q
}

// ResetRun implements Backend.
func (h *HDSearch) ResetRun(engine *sim.Engine, stream *rng.Stream) {
	h.midtier.ResetRun(engine, stream.Split())
	h.bucket.ResetRun(engine, stream.Split())
	h.queryGen = stream.Split()
	link, err := netmodel.New(netmodel.DefaultConfig(), stream.Split())
	if err != nil {
		panic(err) // static config cannot fail
	}
	h.link = link
}

// StartRun implements Backend.
func (h *HDSearch) StartRun(end sim.Time) {
	h.midtier.StartRun(end)
	h.bucket.StartRun(end)
}

// Arrive implements Backend: parse on the midtier, search on the bucket
// (real LSH query), merge back on the midtier, then respond. The payload
// must be an lsh.Vector query.
func (h *HDSearch) Arrive(req *Request, now sim.Time) {
	q, ok := req.Payload.(lsh.Vector)
	if !ok {
		panic(fmt.Sprintf("services: hdsearch got payload %T", req.Payload))
	}
	req.ServerArrive = now

	parseCost := time.Duration(float64(hdMidtierParse)*h.midtier.Noise(hdSigma)) + h.midtier.StackCost()
	h.midtier.Submit(now, parseCost, func(parsed sim.Time) {
		// Midtier → bucket RPC.
		at := parsed.Add(h.link.Delay(len(q) * 8))
		h.scheduleBucket(req, q, at)
	})
}

func (h *HDSearch) scheduleBucket(req *Request, q lsh.Vector, at sim.Time) {
	h.bucket.engine.At(at, func(now sim.Time) {
		results, stats, err := h.index.Query(q, h.topK)
		if err != nil {
			panic(fmt.Sprintf("services: hdsearch query failed: %v", err))
		}
		searchCost := hdBucketBase + time.Duration(stats.Candidates)*hdBucketPerCand
		searchCost = time.Duration(float64(searchCost)*h.bucket.Noise(hdSigma)) + h.bucket.StackCost()
		h.bucket.Submit(now, searchCost, func(searched sim.Time) {
			// Bucket → midtier response, then merge and reply.
			back := searched.Add(h.link.Delay(len(results) * 32))
			h.scheduleMerge(req, len(results), back)
		})
	})
}

func (h *HDSearch) scheduleMerge(req *Request, nresults int, at sim.Time) {
	h.midtier.engine.At(at, func(now sim.Time) {
		mergeCost := time.Duration(float64(hdMidtierMerge)*h.midtier.Noise(hdSigma)) + h.midtier.StackCost()
		h.midtier.Submit(now, mergeCost, func(end sim.Time) {
			req.ResponseBytes = 64 + nresults*48
			req.complete(end)
		})
	})
}
