package services

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/kvstore"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Memcached cost-model constants, calibrated so the mean per-request worker
// occupancy lands at the ~10 µs server-side processing time the paper cites
// for Memcached ([4], [7]).
const (
	memcachedGetBase = 6500 * time.Nanosecond
	memcachedSetBase = 8200 * time.Nanosecond
	memcachedMissAdj = -1500 * time.Nanosecond // misses skip value copy-out
	memcachedPerByte = 4.0                     // ns per value byte (copy+serialize)
	memcachedSigma   = 0.28                    // per-request lognormal sigma
)

// Memcached is the paper's primary benchmark: a key-value cache instance
// with 10 worker threads pinned on a single socket, serving the ETC
// workload. Operations execute against a real key-value store; the
// request's worker occupancy is derived from the operation's actual
// outcome (hit, miss, value size).
//
// The store is a copy-on-write fork of a preload snapshot shared by every
// instance with the same workload parameters: the ETC key space is
// preloaded once per process and frozen, each instance overlays its own
// writes, and a run reset drops the overlay. That keeps run isolation —
// SETs overwrite preloaded values and a GET's cost depends on the stored
// value's size, so runs must each observe the pristine store (§III) —
// while N concurrent sweep cells cost one preload instead of N.
type Memcached struct {
	machine *hw.Machine
	tier    *Tier
	store   *kvstore.Fork
	etcCfg  workload.ETCConfig
}

// memcachedZeroBuf backs preload and run-time Sets (the store copies the
// value, so one read-only buffer serves every instance).
var memcachedZeroBuf = make([]byte, kvstore.MaxValueSize)

// preloadSnapshots caches the frozen preloaded key space per workload
// configuration. Preloading is deterministic — a fixed labeled stream
// drives the value-size draws — so instances sharing a configuration
// would build byte-identical stores; they fork one snapshot instead.
var (
	preloadMu        sync.Mutex
	preloadSnapshots = map[workload.ETCConfig]*kvstore.Snapshot{}
)

// preloadSnapshot returns the shared frozen preload for etcCfg, building
// it on first use. The lock is held across the build so concurrent
// constructors wait for one preload rather than racing to duplicate it.
func preloadSnapshot(etcCfg workload.ETCConfig) (*kvstore.Snapshot, error) {
	preloadMu.Lock()
	defer preloadMu.Unlock()
	if sn, ok := preloadSnapshots[etcCfg]; ok {
		return sn, nil
	}
	etc, err := workload.NewETC(etcCfg, rng.NewLabeled(12345, "memcached-preload"))
	if err != nil {
		return nil, err
	}
	store := kvstore.New(kvstore.Config{Shards: 64})
	keys := workload.ETCKeys(etcCfg.Keys) // interned: shared with every generator
	for i := 0; i < etcCfg.Keys; i++ {
		size := etc.ValueSize()
		if err := store.Set(keys[i], memcachedZeroBuf[:size], 0); err != nil {
			return nil, err
		}
	}
	sn := store.Snapshot()
	preloadSnapshots[etcCfg] = sn
	return sn, nil
}

// MemcachedConfig configures the instance.
type MemcachedConfig struct {
	// ServerHW is the server machine configuration (Table II baseline,
	// with SMT/C1E variants applied by the experiments).
	ServerHW hw.Config
	// Workers is the worker-thread count (paper: 10).
	Workers int
	// Keys is the preloaded key-space size.
	Keys int
	// HiccupRate / HiccupMean tune the background-interference model
	// (zero values keep the calibrated defaults).
	HiccupRate float64
	HiccupMean time.Duration
}

// DefaultMemcachedConfig mirrors the paper's deployment.
func DefaultMemcachedConfig() MemcachedConfig {
	return MemcachedConfig{ServerHW: hw.ServerBaselineConfig(), Workers: 10, Keys: 100_000}
}

// NewMemcached builds and preloads the service.
func NewMemcached(cfg MemcachedConfig) (*Memcached, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("services: memcached needs ≥1 worker, got %d", cfg.Workers)
	}
	if cfg.Keys < 1 {
		return nil, fmt.Errorf("services: memcached needs ≥1 key, got %d", cfg.Keys)
	}
	machine, err := hw.NewMachine("memcached-server", cfg.Workers, cfg.ServerHW)
	if err != nil {
		return nil, err
	}
	cores := make([]int, cfg.Workers)
	for i := range cores {
		cores[i] = i // one worker per physical core; SMT siblings stay free
	}
	tier, err := NewTier(TierConfig{Name: "memcached", Machine: machine, Cores: cores, Hiccups: true, Contention: 0.065,
		HiccupRatePerSec: cfg.HiccupRate, HiccupMeanDuration: cfg.HiccupMean,
		TailJitterProb: 0.015, TailJitterMean: 40 * time.Microsecond})
	if err != nil {
		return nil, err
	}
	m := &Memcached{machine: machine, tier: tier}
	m.etcCfg = workload.DefaultETCConfig()
	m.etcCfg.Keys = cfg.Keys

	// Fork the shared preload: the full key space with ETC-distributed
	// value sizes (so GETs hit realistically), frozen once per process.
	sn, err := preloadSnapshot(m.etcCfg)
	if err != nil {
		return nil, err
	}
	m.store = sn.Fork()
	return m, nil
}

// Name implements Backend.
func (m *Memcached) Name() string { return "memcached" }

// Machines implements Backend.
func (m *Memcached) Machines() []*hw.Machine { return []*hw.Machine{m.machine} }

// MeanServiceTime implements Backend: the GET base cost plus the
// copy-out of a mean-sized ETC value plus the network-stack share —
// ≈9.6 µs under the SMT-off server baseline, matching the ~10 µs
// server-side processing time the paper cites.
func (m *Memcached) MeanServiceTime() float64 {
	meanCopyOut := time.Duration(m.etcCfg.MeanValueSize() * memcachedPerByte) // ns per byte
	return (memcachedGetBase + meanCopyOut + m.tier.StackCost()).Seconds()
}

// ETCConfig returns the workload parameters matching the preloaded store.
func (m *Memcached) ETCConfig() workload.ETCConfig { return m.etcCfg }

// Store exposes the instance's copy-on-write store view for examples and
// diagnostics.
func (m *Memcached) Store() *kvstore.Fork { return m.store }

// ResetRun implements Backend. Dropping the overlay discards every key
// the previous run wrote, so each run observes the identical pristine
// store regardless of which runs executed before it (or concurrently on
// other generators' forks of the same snapshot).
func (m *Memcached) ResetRun(engine *sim.Engine, stream *rng.Stream) {
	m.tier.ResetRun(engine, stream.Split())
	m.store.Reset()
}

// StartRun implements Backend.
func (m *Memcached) StartRun(end sim.Time) { m.tier.StartRun(end) }

// Arrive implements Backend: the request payload must be a
// workload.KVRequest — carried inline in Request.KV on the
// allocation-free path (Request.HasKV set), or boxed in Request.Payload
// by older drivers.
func (m *Memcached) Arrive(req *Request, now sim.Time) {
	var kv workload.KVRequest
	if req.HasKV {
		kv = req.KV
	} else {
		var ok bool
		kv, ok = req.Payload.(workload.KVRequest)
		if !ok {
			panic(fmt.Sprintf("services: memcached got payload %T", req.Payload))
		}
	}
	req.ServerArrive = now

	// Execute the real operation to determine outcome and response size.
	// Both store calls are allocation-free: a GET's cost depends only on
	// the stored value's size (ValueSize skips Get's copy-out), and SETs
	// store views of the shared immutable zero buffer (SetShared skips
	// the defensive copy).
	var cost time.Duration
	switch kv.Op {
	case workload.OpGet:
		size, err := m.store.ValueSize(kv.Key, int64(now))
		if err != nil {
			cost = memcachedGetBase + memcachedMissAdj
			req.ResponseBytes = 24 // miss response header
		} else {
			cost = memcachedGetBase + time.Duration(float64(size)*memcachedPerByte)
			req.ResponseBytes = 24 + size
		}
	case workload.OpSet:
		if err := m.store.SetShared(kv.Key, memcachedZeroBuf[:kv.ValueSize], 0); err != nil {
			panic(fmt.Sprintf("services: memcached preloaded store rejected set: %v", err))
		}
		cost = memcachedSetBase + time.Duration(float64(kv.ValueSize)*memcachedPerByte)
		req.ResponseBytes = 8
	default:
		panic(fmt.Sprintf("services: unknown op %v", kv.Op))
	}

	cost = time.Duration(float64(cost)*m.tier.Noise(memcachedSigma)) + m.tier.StackCost() + m.tier.TailJitter()
	// Memcached binds each connection to one worker thread (libevent).
	m.tier.SubmitConn(now, req.Conn, cost, req, m)
}

// JobDone implements JobSink: memcached is single-stage, so the worker's
// completion is the response departure.
func (m *Memcached) JobDone(end sim.Time, req *Request) { req.complete(end) }

// Crash implements Crasher.
func (m *Memcached) Crash(now sim.Time) { m.tier.Crash(now) }

// Restart implements Crasher.
func (m *Memcached) Restart(now sim.Time) { m.tier.Restart(now) }

// SetDegrade implements Degrader.
func (m *Memcached) SetDegrade(d *faults.DegradeSchedule) { m.tier.SetDegrade(d) }

// QueueStats exposes tier diagnostics.
func (m *Memcached) QueueStats() (completed uint64, maxDepth int) {
	return m.tier.Completed(), m.tier.MaxQueueDepth()
}

// TierStats implements TierStatsProvider.
func (m *Memcached) TierStats() []TierStats { return []TierStats{m.tier.Stats()} }

// Occupancy implements OccupancyProvider (allocation-free tick sampling).
func (m *Memcached) Occupancy() (time.Duration, int) { return m.tier.BusyTime(), m.tier.Workers() }
