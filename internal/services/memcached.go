package services

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/kvstore"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Memcached cost-model constants, calibrated so the mean per-request worker
// occupancy lands at the ~10 µs server-side processing time the paper cites
// for Memcached ([4], [7]).
const (
	memcachedGetBase = 6500 * time.Nanosecond
	memcachedSetBase = 8200 * time.Nanosecond
	memcachedMissAdj = -1500 * time.Nanosecond // misses skip value copy-out
	memcachedPerByte = 4.0                     // ns per value byte (copy+serialize)
	memcachedSigma   = 0.28                    // per-request lognormal sigma
)

// Memcached is the paper's primary benchmark: a key-value cache instance
// with 10 worker threads pinned on a single socket, serving the ETC
// workload. Operations execute against a real kvstore.Store; the request's
// worker occupancy is derived from the operation's actual outcome (hit,
// miss, value size).
type Memcached struct {
	machine *hw.Machine
	tier    *Tier
	store   *kvstore.Store
	preload int
	etcCfg  workload.ETCConfig

	// Run isolation: SETs overwrite preloaded values, and a GET's cost
	// depends on the stored value's size — without restoring the store,
	// run N would observe run N-1's writes and runs would stop being
	// independent (§III) or safely parallelizable. preloadSizes remembers
	// each key's preloaded value size; dirty collects the keys written
	// during the current run so ResetRun can restore exactly those.
	preloadSizes map[string]int
	dirty        map[string]struct{}
}

// memcachedZeroBuf backs preload and restore Sets (kvstore copies the
// value, so one read-only buffer serves every instance).
var memcachedZeroBuf = make([]byte, kvstore.MaxValueSize)

// MemcachedConfig configures the instance.
type MemcachedConfig struct {
	// ServerHW is the server machine configuration (Table II baseline,
	// with SMT/C1E variants applied by the experiments).
	ServerHW hw.Config
	// Workers is the worker-thread count (paper: 10).
	Workers int
	// Keys is the preloaded key-space size.
	Keys int
}

// DefaultMemcachedConfig mirrors the paper's deployment.
func DefaultMemcachedConfig() MemcachedConfig {
	return MemcachedConfig{ServerHW: hw.ServerBaselineConfig(), Workers: 10, Keys: 100_000}
}

// NewMemcached builds and preloads the service.
func NewMemcached(cfg MemcachedConfig) (*Memcached, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("services: memcached needs ≥1 worker, got %d", cfg.Workers)
	}
	if cfg.Keys < 1 {
		return nil, fmt.Errorf("services: memcached needs ≥1 key, got %d", cfg.Keys)
	}
	machine, err := hw.NewMachine("memcached-server", cfg.Workers, cfg.ServerHW)
	if err != nil {
		return nil, err
	}
	cores := make([]int, cfg.Workers)
	for i := range cores {
		cores[i] = i // one worker per physical core; SMT siblings stay free
	}
	tier, err := NewTier(TierConfig{Name: "memcached", Machine: machine, Cores: cores, Hiccups: true, Contention: 0.065,
		TailJitterProb: 0.015, TailJitterMean: 40 * time.Microsecond})
	if err != nil {
		return nil, err
	}
	m := &Memcached{
		machine:      machine,
		tier:         tier,
		store:        kvstore.New(kvstore.Config{Shards: 64}),
		preload:      cfg.Keys,
		preloadSizes: make(map[string]int, cfg.Keys),
		dirty:        make(map[string]struct{}),
	}
	m.etcCfg = workload.DefaultETCConfig()
	m.etcCfg.Keys = cfg.Keys

	// Preload the full key space with ETC-distributed value sizes so GETs
	// hit realistically.
	etc, err := workload.NewETC(m.etcCfg, rng.NewLabeled(12345, "memcached-preload"))
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Keys; i++ {
		size := etc.ValueSize()
		key := fmt.Sprintf("etc-%012d", i)
		if err := m.store.Set(key, memcachedZeroBuf[:size], 0); err != nil {
			return nil, err
		}
		m.preloadSizes[key] = size
	}
	return m, nil
}

// Name implements Backend.
func (m *Memcached) Name() string { return "memcached" }

// Machines implements Backend.
func (m *Memcached) Machines() []*hw.Machine { return []*hw.Machine{m.machine} }

// MeanServiceTime implements Backend.
func (m *Memcached) MeanServiceTime() float64 {
	return (time.Duration(memcachedGetBase) + 330*time.Nanosecond*memcachedPerByte/1 + m.tier.StackCost()).Seconds()
}

// ETCConfig returns the workload parameters matching the preloaded store.
func (m *Memcached) ETCConfig() workload.ETCConfig { return m.etcCfg }

// Store exposes the backing store for examples and diagnostics.
func (m *Memcached) Store() *kvstore.Store { return m.store }

// ResetRun implements Backend. Besides the tier state it restores every
// key the previous run wrote back to its preloaded value, so each run
// observes the identical pristine store regardless of which runs executed
// before it (or concurrently on other generators).
func (m *Memcached) ResetRun(engine *sim.Engine, stream *rng.Stream) {
	m.tier.ResetRun(engine, stream.Split())
	for key := range m.dirty {
		size, ok := m.preloadSizes[key]
		if !ok {
			m.store.Delete(key)
			continue
		}
		if err := m.store.Set(key, memcachedZeroBuf[:size], 0); err != nil {
			panic(fmt.Sprintf("services: memcached restore rejected set: %v", err))
		}
	}
	clear(m.dirty)
}

// StartRun implements Backend.
func (m *Memcached) StartRun(end sim.Time) { m.tier.StartRun(end) }

// Arrive implements Backend: the request payload must be a
// workload.KVRequest.
func (m *Memcached) Arrive(req *Request, now sim.Time) {
	kv, ok := req.Payload.(workload.KVRequest)
	if !ok {
		panic(fmt.Sprintf("services: memcached got payload %T", req.Payload))
	}
	req.ServerArrive = now

	// Execute the real operation to determine outcome and response size.
	var cost time.Duration
	switch kv.Op {
	case workload.OpGet:
		value, err := m.store.Get(kv.Key, int64(now))
		if err != nil {
			cost = memcachedGetBase + memcachedMissAdj
			req.ResponseBytes = 24 // miss response header
		} else {
			cost = memcachedGetBase + time.Duration(float64(len(value))*memcachedPerByte)
			req.ResponseBytes = 24 + len(value)
		}
	case workload.OpSet:
		value := make([]byte, kv.ValueSize)
		if err := m.store.Set(kv.Key, value, 0); err != nil {
			panic(fmt.Sprintf("services: memcached preloaded store rejected set: %v", err))
		}
		m.dirty[kv.Key] = struct{}{}
		cost = memcachedSetBase + time.Duration(float64(kv.ValueSize)*memcachedPerByte)
		req.ResponseBytes = 8
	default:
		panic(fmt.Sprintf("services: unknown op %v", kv.Op))
	}

	cost = time.Duration(float64(cost)*m.tier.Noise(memcachedSigma)) + m.tier.StackCost() + m.tier.TailJitter()
	// Memcached binds each connection to one worker thread (libevent).
	m.tier.SubmitConn(now, req.Conn, cost, func(end sim.Time) { req.complete(end) })
}

// QueueStats exposes tier diagnostics.
func (m *Memcached) QueueStats() (completed uint64, maxDepth int) {
	return m.tier.Completed(), m.tier.MaxQueueDepth()
}
