package services

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Synthetic is the paper's tunable service (§IV-B): a base service time
// plus a configurable busy-wait delay. The delay occupies the worker core
// (the paper implements it with a busy loop "as the additional wait time
// should be accounted as service time rather than sleep time"), so higher
// delays raise utilization and eventually queueing — the sensitivity axis
// of Figure 7.
type Synthetic struct {
	machine *hw.Machine
	tier    *Tier
	base    time.Duration
	delay   time.Duration
	sigma   float64
}

// SyntheticConfig configures the service.
type SyntheticConfig struct {
	ServerHW hw.Config
	Workers  int           // paper: 10 worker threads on one socket
	Base     time.Duration // baseline processing (memcached-like ~9µs)
	Delay    time.Duration // added busy-wait (the paper sweeps 0–400µs)
	// HiccupRate / HiccupMean tune the background-interference model
	// (zero values keep the calibrated defaults).
	HiccupRate float64
	HiccupMean time.Duration
}

// DefaultSyntheticConfig mirrors the paper's setup with no added delay.
func DefaultSyntheticConfig() SyntheticConfig {
	return SyntheticConfig{
		ServerHW: hw.ServerBaselineConfig(),
		Workers:  10,
		Base:     9 * time.Microsecond,
	}
}

// NewSynthetic builds the service.
func NewSynthetic(cfg SyntheticConfig) (*Synthetic, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("services: synthetic needs ≥1 worker, got %d", cfg.Workers)
	}
	if cfg.Base <= 0 || cfg.Delay < 0 {
		return nil, fmt.Errorf("services: invalid synthetic times base=%v delay=%v", cfg.Base, cfg.Delay)
	}
	machine, err := hw.NewMachine("synthetic-server", cfg.Workers, cfg.ServerHW)
	if err != nil {
		return nil, err
	}
	cores := make([]int, cfg.Workers)
	for i := range cores {
		cores[i] = i
	}
	tier, err := NewTier(TierConfig{Name: "synthetic", Machine: machine, Cores: cores, Hiccups: true, Contention: 0.02,
		HiccupRatePerSec: cfg.HiccupRate, HiccupMeanDuration: cfg.HiccupMean,
		TailJitterProb: 0.015, TailJitterMean: 40 * time.Microsecond})
	if err != nil {
		return nil, err
	}
	return &Synthetic{machine: machine, tier: tier, base: cfg.Base, delay: cfg.Delay, sigma: 0.10}, nil
}

// Name implements Backend.
func (s *Synthetic) Name() string { return "synthetic" }

// Machines implements Backend.
func (s *Synthetic) Machines() []*hw.Machine { return []*hw.Machine{s.machine} }

// MeanServiceTime implements Backend.
func (s *Synthetic) MeanServiceTime() float64 {
	return (s.base + s.delay + s.tier.StackCost()).Seconds()
}

// Delay returns the configured added busy-wait.
func (s *Synthetic) Delay() time.Duration { return s.delay }

// TierStats implements TierStatsProvider.
func (s *Synthetic) TierStats() []TierStats { return []TierStats{s.tier.Stats()} }

// Occupancy implements OccupancyProvider (allocation-free tick sampling).
func (s *Synthetic) Occupancy() (time.Duration, int) { return s.tier.BusyTime(), s.tier.Workers() }

// ResetRun implements Backend.
func (s *Synthetic) ResetRun(engine *sim.Engine, stream *rng.Stream) {
	s.tier.ResetRun(engine, stream.Split())
}

// StartRun implements Backend.
func (s *Synthetic) StartRun(end sim.Time) { s.tier.StartRun(end) }

// Arrive implements Backend. The payload is ignored; every request costs
// base (noisy) + the exact busy-wait delay.
func (s *Synthetic) Arrive(req *Request, now sim.Time) {
	req.ServerArrive = now
	req.ResponseBytes = 64
	cost := time.Duration(float64(s.base)*s.tier.Noise(s.sigma)) + s.delay + s.tier.StackCost() + s.tier.TailJitter()
	s.tier.Submit(now, cost, req, s)
}

// JobDone implements JobSink: the synthetic service is single-stage.
func (s *Synthetic) JobDone(end sim.Time, req *Request) { req.complete(end) }

// Crash implements Crasher.
func (s *Synthetic) Crash(now sim.Time) { s.tier.Crash(now) }

// Restart implements Crasher.
func (s *Synthetic) Restart(now sim.Time) { s.tier.Restart(now) }

// SetDegrade implements Degrader.
func (s *Synthetic) SetDegrade(d *faults.DegradeSchedule) { s.tier.SetDegrade(d) }
