package services

import (
	"fmt"
	"math/bits"
	"time"

	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Network-stack processing constants. On an SMT-disabled server the RX/TX
// softirq work executes on the worker's own core and extends the request's
// occupancy; with SMT enabled it largely runs on the sibling hardware
// thread, which is the mechanism behind the SMT speedup the paper's server
// study measures (Fig. 2).
const (
	stackCostSMTOff = 1800 * time.Nanosecond
	stackCostSMTOn  = 500 * time.Nanosecond

	// wakeDispatchCost is the scheduler cost to hand a request to a
	// worker thread that was blocked idle (much cheaper than the client
	// event-loop context switch because the server thread is already hot
	// on its dedicated core).
	wakeDispatchCost = 2 * time.Microsecond
)

// Background-interference ("hiccup") model defaults: occasional
// kernel/daemon activity steals a worker for a while, producing the
// right-skewed run distributions of the paper's Figure 9. TierConfig
// overrides both knobs; these remain the calibrated defaults.
const (
	defaultHiccupRatePerSec   = 1.2
	defaultHiccupMeanDuration = 700 * time.Microsecond
)

// JobSink receives tier job completions. Backends implement it once
// (dispatching multi-hop services on Request.Stage), so submitting work
// allocates nothing — the pre-refactor API took a fresh `done` closure
// per request instead.
type JobSink interface {
	// JobDone fires at the instant the worker finishes the job. req is
	// the job's request (nil for background work such as hiccups).
	JobDone(end sim.Time, req *Request)
}

// noopJobSink absorbs background-job completions.
type noopJobSink struct{}

func (noopJobSink) JobDone(sim.Time, *Request) {}

var noopSink JobSink = noopJobSink{}

// tierJob is one unit of queued work. Jobs are plain values held in
// reusable queue slices: queuing work never allocates in steady state.
type tierJob struct {
	cost time.Duration
	req  *Request
	sink JobSink
}

// jobFIFO is a head-indexed FIFO of tierJobs. Pop is O(1): it advances a
// head cursor instead of sliding the whole backlog down with copy (the
// old per-dispatch O(n) cost). Popped slots are zeroed so recycled
// requests and sinks are not pinned, the backing slice is reused across
// pushes, and pushes compact the live window back to the front only when
// the slice would otherwise grow — amortized O(1) per job.
type jobFIFO struct {
	jobs []tierJob
	head int
}

// depth returns the number of queued jobs.
func (q *jobFIFO) depth() int { return len(q.jobs) - q.head }

// push appends a job, compacting the dead head region first if the
// backing array is full (so sustained backlogs reuse slots instead of
// growing the slice by the total throughput).
func (q *jobFIFO) push(j tierJob) {
	if q.head > 0 && len(q.jobs) == cap(q.jobs) {
		n := copy(q.jobs, q.jobs[q.head:])
		for i := n; i < len(q.jobs); i++ {
			q.jobs[i] = tierJob{}
		}
		q.jobs = q.jobs[:n]
		q.head = 0
	}
	q.jobs = append(q.jobs, j)
}

// pop removes and returns the oldest job. The caller must check depth.
func (q *jobFIFO) pop() tierJob {
	j := q.jobs[q.head]
	q.jobs[q.head] = tierJob{}
	q.head++
	if q.head == len(q.jobs) {
		q.jobs = q.jobs[:0]
		q.head = 0
	}
	return j
}

// reset empties the queue, dropping job references but keeping the
// backing array for reuse across runs.
func (q *jobFIFO) reset() {
	for i := q.head; i < len(q.jobs); i++ {
		q.jobs[i] = tierJob{}
	}
	q.jobs = q.jobs[:0]
	q.head = 0
}

// tierWorker is one service thread pinned to a hardware thread. Workers
// are values in the tier's flat slice (fixed at construction, so
// &t.workers[i] is stable and rides in event args); busy/idle state
// lives in the tier's busyMask bitmap, not here, so the idle scan reads
// one word instead of striding over ~100-byte worker structs.
type tierWorker struct {
	core *hw.Core
	// index is the worker's position in the tier's slice and busyMask —
	// completions arrive with only the worker pointer, and the index
	// gets the mask bit back without pointer arithmetic.
	index int32
	// cur is the in-flight job, delivered back to the tier's completion
	// event via the worker pointer (no per-job closure).
	cur tierJob
	// queue is the worker's private backlog in affinity mode (memcached
	// pins each connection to one worker thread, so a hot worker queues
	// even while others idle).
	queue jobFIFO
	// doneEv is the pending completion event for cur, kept so a replica
	// crash can cancel the in-flight work instead of letting it complete
	// after the machine went dark.
	doneEv sim.EventID
}

// Tier is a pool of worker threads with a shared FIFO queue, pinned to
// cores of one machine — the structure of a memcached instance ("10 worker
// threads pinned on a single socket", §IV-B) and of each HDSearch /
// Social Network tier.
type Tier struct {
	name    string
	machine *hw.Machine
	engine  *sim.Engine
	workers []tierWorker
	// busyMask has bit i set ⇔ workers[i] is busy. Phantom bits past the
	// pool size are kept set so "any idle worker?" is one != ^0 compare
	// per word and the first-idle pick is a TrailingZeros.
	busyMask []uint64
	queue    jobFIFO

	stream       *rng.Stream
	serviceScale float64
	hiccups      bool
	hiccupEnd    sim.Time // horizon for background-interference injection
	hiccupRate   float64
	hiccupMean   time.Duration
	contention   float64
	tailProb     float64
	tailMean     time.Duration

	// Fault-layer state (run-scoped). down marks the tier dark after a
	// crash: arrivals fail defensively and background work is dropped
	// until Restart. deg is the replica's straggler schedule, installed
	// per run by the cluster layer (nil on the fault-free path — its
	// only cost there is one nil check per submission).
	down bool
	deg  *faults.DegradeSchedule

	// Statistics (run-scoped). Shared-FIFO and per-connection affinity
	// backlogs are tracked separately: they measure different phenomena
	// (pool saturation vs. per-worker hot-spotting) and conflating them
	// under one maximum made load-balance statistics subtly wrong.
	completed      uint64
	maxSharedQueue int
	maxConnQueue   int
	busyCount      int
	busyTime       time.Duration
	hiccupCount    uint64
	hiccupTime     time.Duration
	crashFailed    uint64
}

// TierConfig configures a worker pool.
type TierConfig struct {
	Name    string
	Machine *hw.Machine
	// Cores pins workers to these hardware threads of Machine.
	Cores []int
	// Hiccups enables background-interference injection on this tier.
	Hiccups bool
	// HiccupRatePerSec / HiccupMeanDuration tune the hiccup model: the
	// Poisson arrival rate of interference events (per virtual second)
	// and the mean lognormal stall length. Zero values select the
	// calibrated defaults (1.2/s, 700µs); they only apply when Hiccups
	// is set.
	HiccupRatePerSec   float64
	HiccupMeanDuration time.Duration
	// Contention inflates a request's service time by this fraction per
	// concurrently busy worker, modelling shared LLC/memory-bandwidth
	// pressure. It is what bends the latency curves upward as load grows.
	Contention float64
	// TailJitterProb is the per-request probability of a kernel-side
	// stall (softirq collision, cross-socket miss storm) of mean
	// TailJitterMean — the source of the service's intrinsic p99 tail.
	TailJitterProb float64
	TailJitterMean time.Duration
}

// NewTier builds a tier. The engine is attached per run via ResetRun.
func NewTier(cfg TierConfig) (*Tier, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("services: tier %q has no machine", cfg.Name)
	}
	if len(cfg.Cores) == 0 {
		return nil, fmt.Errorf("services: tier %q has no worker cores", cfg.Name)
	}
	if cfg.Contention < 0 {
		return nil, fmt.Errorf("services: tier %q has negative contention factor", cfg.Name)
	}
	if cfg.TailJitterProb < 0 || cfg.TailJitterProb > 1 {
		return nil, fmt.Errorf("services: tier %q tail jitter probability %v outside [0,1]", cfg.Name, cfg.TailJitterProb)
	}
	if cfg.HiccupRatePerSec < 0 {
		return nil, fmt.Errorf("services: tier %q has negative hiccup rate %g", cfg.Name, cfg.HiccupRatePerSec)
	}
	if cfg.HiccupMeanDuration < 0 {
		return nil, fmt.Errorf("services: tier %q has negative hiccup mean duration %v", cfg.Name, cfg.HiccupMeanDuration)
	}
	hiccupRate := cfg.HiccupRatePerSec
	if hiccupRate == 0 {
		hiccupRate = defaultHiccupRatePerSec
	}
	hiccupMean := cfg.HiccupMeanDuration
	if hiccupMean == 0 {
		hiccupMean = defaultHiccupMeanDuration
	}
	t := &Tier{name: cfg.Name, machine: cfg.Machine, hiccups: cfg.Hiccups,
		hiccupRate: hiccupRate, hiccupMean: hiccupMean,
		contention: cfg.Contention, tailProb: cfg.TailJitterProb, tailMean: cfg.TailJitterMean,
		serviceScale: 1}
	for _, id := range cfg.Cores {
		if id < 0 || id >= cfg.Machine.NumThreads() {
			return nil, fmt.Errorf("services: tier %q pins core %d outside machine with %d threads",
				cfg.Name, id, cfg.Machine.NumThreads())
		}
		t.workers = append(t.workers, tierWorker{core: cfg.Machine.Core(id), index: int32(len(t.workers))})
	}
	t.busyMask = make([]uint64, (len(t.workers)+63)/64)
	t.clearBusyMask()
	return t, nil
}

// clearBusyMask marks every worker idle and every phantom bit (past the
// pool size in the last word) busy, so idleWorker's per-word any-idle
// test never has to special-case the tail.
func (t *Tier) clearBusyMask() {
	for i := range t.busyMask {
		t.busyMask[i] = 0
	}
	for i := len(t.workers); i < len(t.busyMask)*64; i++ {
		t.busyMask[i>>6] |= 1 << uint(i&63)
	}
}

func (t *Tier) setBusy(i int32)   { t.busyMask[i>>6] |= 1 << uint(i&63) }
func (t *Tier) clearBusy(i int32) { t.busyMask[i>>6] &^= 1 << uint(i&63) }
func (t *Tier) busy(i int) bool   { return t.busyMask[i>>6]&(1<<uint(i&63)) != 0 }

// Name returns the tier's label.
func (t *Tier) Name() string { return t.name }

// Workers returns the pool size.
func (t *Tier) Workers() int { return len(t.workers) }

// Completed returns the number of jobs finished this run.
func (t *Tier) Completed() uint64 { return t.completed }

// MaxSharedQueueDepth returns the deepest shared-FIFO backlog observed
// this run (Submit path: jobs waiting because every worker was busy).
func (t *Tier) MaxSharedQueueDepth() int { return t.maxSharedQueue }

// MaxConnQueueDepth returns the deepest per-worker affinity backlog
// observed this run (SubmitConn path: jobs waiting on their connection's
// designated worker even while others idle).
func (t *Tier) MaxConnQueueDepth() int { return t.maxConnQueue }

// MaxQueueDepth returns the deepest backlog observed this run across
// both queue disciplines — the maximum of the shared-FIFO and affinity
// depths, preserving the pre-split meaning for existing callers.
func (t *Tier) MaxQueueDepth() int {
	if t.maxSharedQueue > t.maxConnQueue {
		return t.maxSharedQueue
	}
	return t.maxConnQueue
}

// BusyTime returns the accumulated worker occupancy this run: the sum of
// every dispatched job's actual execution window (including contention
// inflation and DVFS stretch, excluding queueing and wake latency). With
// W workers over a run of length T, BusyTime/(W·T) is the tier's
// utilization — the signal cluster autoscaling samples.
func (t *Tier) BusyTime() time.Duration { return t.busyTime }

// StackCost returns the per-request network-stack occupancy charged to the
// worker under the machine's SMT setting.
func (t *Tier) StackCost() time.Duration {
	if t.machine.Config().SMT {
		return stackCostSMTOn
	}
	return stackCostSMTOff
}

// ResetRun clears the queue and draws fresh run-scoped service noise:
// a small lognormal scale plus an occasional "disturbed run" inflation
// (background daemon active for the whole run), which is what makes
// same-configuration runs differ — the variability under study.
func (t *Tier) ResetRun(engine *sim.Engine, stream *rng.Stream) {
	t.engine = engine
	t.stream = stream
	t.queue.reset()
	t.completed = 0
	t.maxSharedQueue = 0
	t.maxConnQueue = 0
	t.busyCount = 0
	t.busyTime = 0
	t.hiccupCount = 0
	t.hiccupTime = 0
	t.crashFailed = 0
	t.down = false
	t.deg = nil
	for i := range t.workers {
		w := &t.workers[i]
		w.cur = tierJob{}
		w.queue.reset()
	}
	t.clearBusyMask()
	scale := stream.LogNormal(0, 0.012)
	if stream.Float64() < 0.10 {
		scale *= 1 + 0.03 + 0.09*stream.Float64()
	}
	t.serviceScale = scale
}

// Tier event kinds, packed into the typed event's scalar argument.
const (
	tierEvDone   uint64 = iota // a worker finished its job (Ptr: *tierWorker)
	tierEvHiccup               // background-interference arrival (Ptr: nil)
)

// StartRun schedules background hiccups until end.
func (t *Tier) StartRun(end sim.Time) {
	if !t.hiccups {
		return
	}
	t.hiccupEnd = end
	t.scheduleHiccup(sim.Time(0).Add(time.Duration(t.stream.Exp(t.hiccupRate) * float64(time.Second))))
}

func (t *Tier) scheduleHiccup(at sim.Time) {
	if at > t.hiccupEnd {
		return
	}
	t.engine.AtSink(at, t, sim.EventArg{U64: tierEvHiccup})
}

// OnEvent implements sim.EventSink: the tier's two event kinds are job
// completions and hiccup arrivals. RNG draw order matches the retired
// closure implementation exactly, keeping runs bit-identical.
func (t *Tier) OnEvent(now sim.Time, arg sim.EventArg) {
	switch arg.U64 {
	case tierEvDone:
		w := arg.Ptr.(*tierWorker)
		job := w.cur
		w.cur = tierJob{}
		t.completed++
		job.sink.JobDone(now, job.req)
		t.finishWorker(now, w)
	case tierEvHiccup:
		// Draws happen whether or not the tier is dark, so the stream
		// position (and with it every later draw) is independent of crash
		// timing. A dark machine just doesn't run the interference.
		dur := time.Duration(t.stream.LogNormal(0, 0.6) * float64(t.hiccupMean))
		if !t.down {
			t.hiccupCount++
			t.hiccupTime += dur
			t.Submit(now, dur, nil, noopSink)
		}
		t.scheduleHiccup(now.Add(time.Duration(t.stream.Exp(t.hiccupRate) * float64(time.Second))))
	}
}

// Noise returns a multiplicative service-time noise sample combining the
// run-scoped scale with per-request lognormal variation.
func (t *Tier) Noise(sigma float64) float64 {
	return t.serviceScale * t.stream.LogNormal(0, sigma)
}

// TailJitter returns an occasional kernel-side stall to add to a request's
// service time (zero for most requests).
func (t *Tier) TailJitter() time.Duration {
	if t.tailProb <= 0 || t.stream.Float64() >= t.tailProb {
		return 0
	}
	return time.Duration(t.stream.Exp(1) * float64(t.tailMean))
}

// Submit enqueues work of the given core occupancy on the shared FIFO;
// sink.JobDone(end, req) fires at its completion instant (req may be nil
// for background work). The cost must already include any service noise;
// the tier applies queueing, worker wake latency, SMT contention and DVFS
// effects through the hardware model. Submitting allocates nothing in
// steady state: jobs are values in reusable queues and the completion is
// a pooled typed event.
func (t *Tier) Submit(now sim.Time, cost time.Duration, req *Request, sink JobSink) {
	if t.down {
		t.rejectDark(now, req)
		return
	}
	if t.deg != nil {
		cost = time.Duration(float64(cost) * t.deg.FactorAt(now))
	}
	job := tierJob{cost: cost, req: req, sink: sink}
	w := t.idleWorker()
	if w == nil {
		t.queue.push(job)
		if d := t.queue.depth(); d > t.maxSharedQueue {
			t.maxSharedQueue = d
		}
		return
	}
	t.dispatch(now, w, job)
}

// SubmitConn enqueues work with connection affinity: the connection's
// designated worker serves it even if other workers are idle — memcached's
// libevent model, where each connection is bound to one worker thread.
// This per-worker queueing is what bends the latency curve upward with
// load well before the pool is saturated.
func (t *Tier) SubmitConn(now sim.Time, conn int, cost time.Duration, req *Request, sink JobSink) {
	if t.down {
		t.rejectDark(now, req)
		return
	}
	if t.deg != nil {
		cost = time.Duration(float64(cost) * t.deg.FactorAt(now))
	}
	// Non-negative modulo: negating conn would overflow for math.MinInt
	// (still negative), and a negative index panics below.
	idx := conn % len(t.workers)
	if idx < 0 {
		idx += len(t.workers)
	}
	w := &t.workers[idx]
	job := tierJob{cost: cost, req: req, sink: sink}
	if t.busy(idx) {
		w.queue.push(job)
		if d := w.queue.depth(); d > t.maxConnQueue {
			t.maxConnQueue = d
		}
		return
	}
	t.dispatch(now, w, job)
}

// idleWorker finds the lowest-indexed idle worker: one any-idle compare
// plus a TrailingZeros per mask word, instead of the old pointer-chasing
// scan over worker structs.
func (t *Tier) idleWorker() *tierWorker {
	for wi, word := range t.busyMask {
		if word != ^uint64(0) {
			return &t.workers[wi*64+bits.TrailingZeros64(^word)]
		}
	}
	return nil
}

// dispatch runs job on w starting at now. The worker pays its C-state exit
// latency (the server-side C1E penalty of Fig. 3 arises here) plus a small
// dispatch cost when it was sleeping.
func (t *Tier) dispatch(now sim.Time, w *tierWorker, job tierJob) {
	t.setBusy(w.index)
	t.busyCount++
	if t.contention > 0 && t.busyCount > 1 {
		job.cost = time.Duration(float64(job.cost) * (1 + t.contention*float64(t.busyCount-1)))
	}
	start := now
	if w.core.Idle() {
		wasDeep := w.core.CurrentCState() != "C0"
		start = w.core.Wake(now)
		if wasDeep {
			start = start.Add(wakeDispatchCost)
		}
	} else if w.core.BusyUntil() > start {
		start = w.core.BusyUntil()
	}
	end := w.core.Execute(start, job.cost)
	t.busyTime += end.Sub(start)
	w.cur = job
	w.doneEv = t.engine.AtSink(end, t, sim.EventArg{Ptr: w, U64: tierEvDone})
}

// finishWorker pulls the next queued job (its own affinity queue first,
// then the shared queue) or puts the worker to sleep.
func (t *Tier) finishWorker(now sim.Time, w *tierWorker) {
	t.clearBusy(w.index)
	t.busyCount--
	if w.queue.depth() > 0 {
		t.dispatch(now, w, w.queue.pop())
		return
	}
	if t.queue.depth() > 0 {
		t.dispatch(now, w, t.queue.pop())
		return
	}
	// Server worker threads block on the socket with no timer armed: the
	// idle governor has no deadline hint.
	if !w.core.Idle() && w.core.BusyUntil() <= now {
		w.core.Sleep(now, 0)
	}
}

// SetDegrade installs (or with nil clears) the straggler schedule: every
// subsequently submitted job's cost is multiplied by the schedule's
// factor at its submission instant. ResetRun clears it, so the cluster
// layer re-installs per run.
func (t *Tier) SetDegrade(d *faults.DegradeSchedule) { t.deg = d }

// rejectDark handles a submission while the tier is crashed: requests
// fail immediately (the routing layer normally gates these, so this is a
// defensive backstop for mid-chain hops), background work is dropped.
func (t *Tier) rejectDark(now sim.Time, req *Request) {
	if req != nil && req.Outcome != OutcomeFailed {
		t.crashFailed++
		req.Fail(now)
	}
}

// Crash takes the tier dark at now: pending completion events are
// cancelled, the in-flight and queued requests fail (their error
// responses leave at now), background jobs are dropped, and the tier
// rejects work until Restart. Workers iterate in index order and queues
// drain FIFO, so the burst of failure completions is ordered
// deterministically. BusyTime keeps the already-accounted occupancy of
// cancelled jobs (scheduled occupancy, not retroactively trimmed), and
// core BusyUntil marks are left as-is — a microsecond-scale artifact
// absorbed at restart.
func (t *Tier) Crash(now sim.Time) {
	for i := range t.workers {
		w := &t.workers[i]
		if t.busy(i) && w.cur.sink != nil {
			t.engine.Cancel(w.doneEv)
			job := w.cur
			w.cur = tierJob{}
			if job.req != nil && job.req.Outcome != OutcomeFailed {
				t.crashFailed++
				job.req.Fail(now)
			}
		}
		for w.queue.depth() > 0 {
			job := w.queue.pop()
			if job.req != nil && job.req.Outcome != OutcomeFailed {
				t.crashFailed++
				job.req.Fail(now)
			}
		}
	}
	for t.queue.depth() > 0 {
		job := t.queue.pop()
		if job.req != nil && job.req.Outcome != OutcomeFailed {
			t.crashFailed++
			job.req.Fail(now)
		}
	}
	t.busyCount = 0
	t.clearBusyMask()
	t.down = true
}

// Restart brings a crashed tier back up with empty queues and idle
// workers.
func (t *Tier) Restart(now sim.Time) { t.down = false }
