package stats

import (
	"fmt"
	"math"
	"sort"
)

// Autocorrelation returns the lag-k sample autocorrelation coefficient in
// [−1, 1]. The paper (§III) names autocorrelation as the standard method
// for assessing iid-ness of repeated-run samples: values near 0 indicate no
// correlation between a run and the runs k positions later.
func Autocorrelation(x []float64, lag int) (float64, error) {
	n := len(x)
	if lag < 1 || lag >= n {
		return 0, fmt.Errorf("stats: lag %d out of range for %d samples", lag, n)
	}
	m := Mean(x)
	var num, den float64
	for i := 0; i < n; i++ {
		d := x[i] - m
		den += d * d
	}
	if den == 0 {
		return 0, fmt.Errorf("stats: autocorrelation undefined for constant data")
	}
	for i := 0; i < n-lag; i++ {
		num += (x[i] - m) * (x[i+lag] - m)
	}
	return num / den, nil
}

// AutocorrelationFunction returns lags 1..maxLag of the sample ACF.
func AutocorrelationFunction(x []float64, maxLag int) ([]float64, error) {
	if maxLag >= len(x) {
		maxLag = len(x) - 1
	}
	if maxLag < 1 {
		return nil, fmt.Errorf("%w: ACF needs ≥2 samples", ErrInsufficientData)
	}
	acf := make([]float64, maxLag)
	for k := 1; k <= maxLag; k++ {
		r, err := Autocorrelation(x, k)
		if err != nil {
			return nil, err
		}
		acf[k-1] = r
	}
	return acf, nil
}

// TurningPointResult holds the turning-point test for randomness, the
// second iid diagnostic the paper lists.
type TurningPointResult struct {
	TurningPoints int
	Expected      float64
	Z             float64 // standardized statistic
	PValue        float64 // two-sided
}

// Random reports whether the sequence is consistent with randomness at the
// given significance level.
func (r TurningPointResult) Random(alpha float64) bool { return r.PValue >= alpha }

// TurningPointTest counts local extrema in the series. For an iid sequence
// of length n the count is asymptotically normal with mean 2(n−2)/3 and
// variance (16n−29)/90.
func TurningPointTest(x []float64) (TurningPointResult, error) {
	n := len(x)
	if n < 3 {
		return TurningPointResult{}, fmt.Errorf("%w: turning-point test needs ≥3 samples, have %d", ErrInsufficientData, n)
	}
	tp := 0
	for i := 1; i < n-1; i++ {
		if (x[i] > x[i-1] && x[i] > x[i+1]) || (x[i] < x[i-1] && x[i] < x[i+1]) {
			tp++
		}
	}
	mean := 2 * float64(n-2) / 3
	variance := (16*float64(n) - 29) / 90
	z := (float64(tp) - mean) / math.Sqrt(variance)
	p := 2 * (1 - NormalCDF(math.Abs(z)))
	return TurningPointResult{TurningPoints: tp, Expected: mean, Z: z, PValue: p}, nil
}

// SpearmanRho returns Spearman's rank correlation between x and y, the test
// Lancet uses to check sample independence (Related Work §VII-C). Ties
// receive average ranks.
func SpearmanRho(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: Spearman requires equal lengths, have %d and %d", len(x), len(y))
	}
	if len(x) < 3 {
		return 0, fmt.Errorf("%w: Spearman needs ≥3 pairs, have %d", ErrInsufficientData, len(x))
	}
	rx := ranks(x)
	ry := ranks(y)
	mx, my := Mean(rx), Mean(ry)
	var num, dx, dy float64
	for i := range rx {
		a, b := rx[i]-mx, ry[i]-my
		num += a * b
		dx += a * a
		dy += b * b
	}
	if dx == 0 || dy == 0 {
		return 0, fmt.Errorf("stats: Spearman undefined for constant data")
	}
	return num / math.Sqrt(dx*dy), nil
}

// ranks assigns 1-based average ranks (ties averaged).
func ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

// LagPlot returns (x[i], x[i+lag]) pairs for visual iid inspection — a
// structureless cloud indicates independence. The figures package renders
// these as ASCII scatter plots.
func LagPlot(x []float64, lag int) (xs, ys []float64, err error) {
	n := len(x)
	if lag < 1 || lag >= n {
		return nil, nil, fmt.Errorf("stats: lag %d out of range for %d samples", lag, n)
	}
	xs = make([]float64, n-lag)
	ys = make([]float64, n-lag)
	for i := 0; i < n-lag; i++ {
		xs[i] = x[i]
		ys[i] = x[i+lag]
	}
	return xs, ys, nil
}

// AndersonDarlingResult reports the A² statistic for normality, the test
// Lancet applies to arrival distributions (§VII-C). Critical value at 5 %
// significance (case 3, estimated parameters) is ≈0.787.
type AndersonDarlingResult struct {
	A2       float64 // statistic adjusted for estimated mean/variance
	Critical float64 // 5% critical value
}

// Normal reports whether the data passes the 5 % normality test.
func (r AndersonDarlingResult) Normal() bool { return r.A2 < r.Critical }

// AndersonDarling computes the A² normality statistic with the small-sample
// adjustment of Stephens (1974).
func AndersonDarling(x []float64) (AndersonDarlingResult, error) {
	n := len(x)
	if n < 8 {
		return AndersonDarlingResult{}, fmt.Errorf("%w: Anderson–Darling needs ≥8 samples, have %d", ErrInsufficientData, n)
	}
	c := Sorted(x)
	m := Mean(c)
	sd := StdDev(c)
	if sd == 0 {
		return AndersonDarlingResult{}, fmt.Errorf("stats: Anderson–Darling undefined for constant data")
	}
	s := 0.0
	for i := 0; i < n; i++ {
		zi := (c[i] - m) / sd
		zrev := (c[n-1-i] - m) / sd
		fi := NormalCDF(zi)
		frev := NormalCDF(zrev)
		// Clamp away from 0/1 so logs stay finite.
		fi = clampProb(fi)
		frev = clampProb(frev)
		s += (2*float64(i) + 1) * (math.Log(fi) + math.Log(1-frev))
	}
	a2 := -float64(n) - s/float64(n)
	a2 *= 1 + 0.75/float64(n) + 2.25/(float64(n)*float64(n))
	return AndersonDarlingResult{A2: a2, Critical: 0.787}, nil
}

func clampProb(p float64) float64 {
	const eps = 1e-300
	if p < eps {
		return eps
	}
	if p > 1-1e-15 {
		return 1 - 1e-15
	}
	return p
}
