package stats

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
)

func TestShapiroWilkKnownDataset(t *testing.T) {
	// Example 1 of Shapiro & Wilk (Biometrika 1965): weights of 11 men.
	// The original paper publishes W = 0.79 and a significance level
	// below 0.01 for this right-skewed sample.
	x := []float64{148, 154, 158, 160, 161, 162, 166, 170, 182, 195, 236}
	r, err := ShapiroWilk(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.W-0.79) > 0.01 {
		t.Errorf("W = %v, want ≈0.79 (published 1965 value)", r.W)
	}
	if r.PValue > 0.02 {
		t.Errorf("p = %v, want < 0.02", r.PValue)
	}
	if r.Normal(0.05) {
		t.Error("clearly skewed data passed normality at 5%")
	}
}

func TestShapiroWilkNormalSamplesPass(t *testing.T) {
	s := rng.New(100)
	rejected := 0
	const reps = 200
	for rep := 0; rep < reps; rep++ {
		x := make([]float64, 50)
		for i := range x {
			x[i] = s.Normal(10, 2)
		}
		r, err := ShapiroWilk(x)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Normal(0.05) {
			rejected++
		}
	}
	// Under H0 the rejection rate should be ≈5%.
	rate := float64(rejected) / reps
	if rate > 0.12 {
		t.Errorf("rejected %v of truly normal samples, want ≈0.05", rate)
	}
}

func TestShapiroWilkDetectsExponential(t *testing.T) {
	s := rng.New(101)
	detected := 0
	const reps = 100
	for rep := 0; rep < reps; rep++ {
		x := make([]float64, 50)
		for i := range x {
			x[i] = s.Exp(1)
		}
		r, err := ShapiroWilk(x)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Normal(0.05) {
			detected++
		}
	}
	if detected < 90 {
		t.Errorf("detected only %d/100 exponential samples as non-normal", detected)
	}
}

func TestShapiroWilkDetectsSkewedLatency(t *testing.T) {
	// The paper's Figure 9 situation: most samples near the median, a few
	// scattered far above (queueing tail). Such data must fail the test.
	s := rng.New(102)
	x := make([]float64, 50)
	for i := range x {
		x[i] = s.Normal(95, 1)
		if i%10 == 0 {
			x[i] = 95 + s.Exp(0.2) // heavy right tail
		}
	}
	r, err := ShapiroWilk(x)
	if err != nil {
		t.Fatal(err)
	}
	if r.Normal(0.05) {
		t.Errorf("right-skewed latency distribution passed normality (W=%v p=%v)", r.W, r.PValue)
	}
}

func TestShapiroWilkSmallN(t *testing.T) {
	// n=3 exact branch.
	r, err := ShapiroWilk([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.W <= 0.9 {
		t.Errorf("W for perfectly spaced n=3 = %v, want near 1", r.W)
	}
	// n=5 branch (no second-order weight).
	if _, err := ShapiroWilk([]float64{1, 2, 3, 4, 10}); err != nil {
		t.Fatal(err)
	}
}

func TestShapiroWilkErrors(t *testing.T) {
	if _, err := ShapiroWilk([]float64{1, 2}); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("n=2: want ErrInsufficientData, got %v", err)
	}
	if _, err := ShapiroWilk([]float64{5, 5, 5, 5}); err == nil {
		t.Error("constant data should error")
	}
	big := make([]float64, 5001)
	for i := range big {
		big[i] = float64(i)
	}
	if _, err := ShapiroWilk(big); err == nil {
		t.Error("n>5000 should error")
	}
}

func TestShapiroWilkWInUnitRange(t *testing.T) {
	s := rng.New(103)
	for rep := 0; rep < 50; rep++ {
		n := 3 + s.Intn(200)
		x := make([]float64, n)
		for i := range x {
			x[i] = s.LogNormal(0, 1)
		}
		r, err := ShapiroWilk(x)
		if err != nil {
			t.Fatal(err)
		}
		if r.W <= 0 || r.W > 1 {
			t.Fatalf("W = %v outside (0,1] for n=%d", r.W, n)
		}
		if r.PValue < 0 || r.PValue > 1 {
			t.Fatalf("p = %v outside [0,1]", r.PValue)
		}
	}
}

func BenchmarkShapiroWilk50(b *testing.B) {
	s := rng.New(1)
	x := make([]float64, 50)
	for i := range x {
		x[i] = s.Normal(0, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ShapiroWilk(x); err != nil {
			b.Fatal(err)
		}
	}
}
