package stats

import (
	"fmt"
	"math"
)

// Interval is a confidence interval around a point estimate.
type Interval struct {
	Point      float64 // the estimate the interval brackets (mean or median)
	Lower      float64
	Upper      float64
	Confidence float64 // e.g. 0.95
}

// Overlaps reports whether two intervals overlap. Per the paper (§III): "In
// order to be confident that a mean is higher than another, their CI should
// not overlap."
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Lower <= other.Upper && other.Lower <= iv.Upper
}

// HalfWidthPct returns the half-width of the interval as a percentage of
// the point estimate — the "error" figure the paper's evaluation-time
// analysis targets (≤1 %).
func (iv Interval) HalfWidthPct() float64 {
	if iv.Point == 0 {
		return math.NaN()
	}
	half := math.Max(iv.Upper-iv.Point, iv.Point-iv.Lower)
	return 100 * half / math.Abs(iv.Point)
}

func (iv Interval) String() string {
	return fmt.Sprintf("%.4g [%.4g, %.4g] @%g%%", iv.Point, iv.Lower, iv.Upper, iv.Confidence*100)
}

// zScore returns the two-sided standard-normal critical value for the given
// confidence level (0.95 → 1.96).
func zScore(confidence float64) float64 {
	if confidence <= 0 || confidence >= 1 {
		panic(fmt.Sprintf("stats: confidence %v outside (0,1)", confidence))
	}
	alpha := 1 - confidence
	return NormalQuantile(1 - alpha/2)
}

// NonParametricCI computes the distribution-free confidence interval for
// the median using the paper's Equations 1–2:
//
//	Lower_bound = ⌊(n − z·√n)/2⌋
//	Upper_bound = ⌈1 + (n + z·√n)/2⌉
//
// where bounds are 1-based ranks into the sorted sample. The paper uses
// this form (from Le Boudec) for all reported intervals because systems
// measurements are frequently non-normal. Requires enough samples for the
// rank bounds to be in range; the paper (following CONFIRM) treats n < 10
// as unreliable, and this function returns ErrInsufficientData below that.
func NonParametricCI(x []float64, confidence float64) (Interval, error) {
	n := len(x)
	if n < 10 {
		return Interval{}, fmt.Errorf("%w: need ≥10 samples for a non-parametric CI, have %d", ErrInsufficientData, n)
	}
	z := zScore(confidence)
	fn := float64(n)
	loRank := int(math.Floor((fn - z*math.Sqrt(fn)) / 2))
	hiRank := int(math.Ceil(1 + (fn+z*math.Sqrt(fn))/2))
	if loRank < 1 {
		loRank = 1
	}
	if hiRank > n {
		hiRank = n
	}
	c := Sorted(x)
	med := Median(c)
	return Interval{
		Point:      med,
		Lower:      c[loRank-1],
		Upper:      c[hiRank-1],
		Confidence: confidence,
	}, nil
}

// ParametricCI computes the normal-theory confidence interval for the mean:
// mean ± z·s/√n. The paper uses the z (not t) form, matching Jain's
// treatment for the sample sizes involved.
func ParametricCI(x []float64, confidence float64) (Interval, error) {
	n := len(x)
	if n < 2 {
		return Interval{}, fmt.Errorf("%w: need ≥2 samples for a parametric CI, have %d", ErrInsufficientData, n)
	}
	z := zScore(confidence)
	m := Mean(x)
	half := z * StdDev(x) / math.Sqrt(float64(n))
	return Interval{Point: m, Lower: m - half, Upper: m + half, Confidence: confidence}, nil
}
