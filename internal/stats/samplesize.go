package stats

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// JainIterations implements the paper's Equation 3 (from Jain, "The Art of
// Computer Systems Performance Analysis"): the number of repetitions needed
// for a parametric CI of the mean with at most errPct % error at the given
// confidence level,
//
//	n = (100·z·s / (r·x̄))²
//
// where s and x̄ are the standard deviation and mean of a pilot sample.
// The result is rounded up and is at least 1.
func JainIterations(x []float64, confidence, errPct float64) (int, error) {
	if len(x) < 2 {
		return 0, fmt.Errorf("%w: Jain sample-size rule needs a pilot sample of ≥2, have %d", ErrInsufficientData, len(x))
	}
	if errPct <= 0 {
		return 0, fmt.Errorf("stats: error percentage must be positive, got %v", errPct)
	}
	mean := Mean(x)
	if mean == 0 {
		return 0, fmt.Errorf("stats: Jain sample-size rule undefined for zero mean")
	}
	z := zScore(confidence)
	s := StdDev(x)
	n := math.Pow(100*z*s/(errPct*mean), 2)
	it := int(math.Ceil(n))
	if it < 1 {
		it = 1
	}
	return it, nil
}

// ConfirmConfig parameterizes the CONFIRM repetition estimator
// (Maricq et al., OSDI'18 — "Taming Performance Variability"), which the
// paper uses for non-parametric data (§III, Table IV).
type ConfirmConfig struct {
	Confidence float64 // CI confidence level (paper: 0.95)
	ErrPct     float64 // target half-width as % of the median (paper: 1)
	Rounds     int     // resampling rounds per subset size (original paper: c = 200)
	MinSubset  int     // smallest subset size tried (original paper: s ≥ 10)
}

// DefaultConfirmConfig mirrors the constants in the original CONFIRM paper
// and in this paper's §III.
func DefaultConfirmConfig() ConfirmConfig {
	return ConfirmConfig{Confidence: 0.95, ErrPct: 1, Rounds: 200, MinSubset: 10}
}

// ConfirmResult reports the estimated repetition count.
type ConfirmResult struct {
	// Iterations is the smallest subset size whose resampled CI bounds are
	// within ErrPct of the median. If no subset of the provided data
	// achieves the target, Iterations is len(data)+1 and Converged is
	// false — the paper reports this case as ">50" for 50-run experiments.
	Iterations int
	Converged  bool
	// AchievedErrPct is the CI half-width (as % of median) at the returned
	// subset size.
	AchievedErrPct float64
}

// Confirm estimates the number of repetitions needed for a non-parametric
// median CI with at most cfg.ErrPct % error:
//
//	(i)   for a subset size s ≤ n, randomly draw a subset and estimate the
//	      non-parametric CI;
//	(ii)  shuffle and repeat;
//	(iii) after cfg.Rounds rounds, average the lower bounds and the upper
//	      bounds;
//	(iv)  if the averaged bounds are within the error target, s is the
//	      required repetition count; otherwise grow s.
func Confirm(data []float64, cfg ConfirmConfig, stream *rng.Stream) (ConfirmResult, error) {
	n := len(data)
	if cfg.Rounds <= 0 || cfg.MinSubset < 2 {
		return ConfirmResult{}, fmt.Errorf("stats: invalid CONFIRM config %+v", cfg)
	}
	if n < cfg.MinSubset {
		return ConfirmResult{}, fmt.Errorf("%w: CONFIRM needs ≥%d samples, have %d", ErrInsufficientData, cfg.MinSubset, n)
	}
	median := Median(data)
	if median == 0 {
		return ConfirmResult{}, fmt.Errorf("stats: CONFIRM undefined for zero median")
	}

	work := append([]float64(nil), data...)
	for size := cfg.MinSubset; size <= n; size++ {
		sumLo, sumHi := 0.0, 0.0
		valid := 0
		for round := 0; round < cfg.Rounds; round++ {
			shuffle(work, stream)
			iv, err := NonParametricCI(work[:size], cfg.Confidence)
			if err != nil {
				continue
			}
			sumLo += iv.Lower
			sumHi += iv.Upper
			valid++
		}
		if valid == 0 {
			continue
		}
		meanLo := sumLo / float64(valid)
		meanHi := sumHi / float64(valid)
		errPct := 100 * math.Max(meanHi-median, median-meanLo) / math.Abs(median)
		if errPct <= cfg.ErrPct {
			return ConfirmResult{Iterations: size, Converged: true, AchievedErrPct: errPct}, nil
		}
		if size == n {
			return ConfirmResult{Iterations: n + 1, Converged: false, AchievedErrPct: errPct}, nil
		}
	}
	return ConfirmResult{Iterations: n + 1, Converged: false, AchievedErrPct: math.NaN()}, nil
}

// shuffle performs a Fisher–Yates shuffle using the provided stream.
func shuffle(x []float64, stream *rng.Stream) {
	for i := len(x) - 1; i > 0; i-- {
		j := stream.Intn(i + 1)
		x[i], x[j] = x[j], x[i]
	}
}
