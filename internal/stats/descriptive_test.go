package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1, 2, 3}, 2},
		{[]float64{5}, 5},
		{[]float64{-1, 1}, 0},
		{[]float64{2.5, 2.5, 2.5, 2.5}, 2.5},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n−1: 32/7.
	want := 32.0 / 7.0
	if got := Variance(x); !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(x); !almostEqual(got, math.Sqrt(want), 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, math.Sqrt(want))
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single sample should be NaN")
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{7}, 7},
		{[]float64{1, 1, 1, 1, 100}, 1},
	}
	for _, c := range cases {
		if got := Median(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutateInput(t *testing.T) {
	x := []float64{3, 1, 2}
	Median(x)
	if x[0] != 3 || x[1] != 1 || x[2] != 2 {
		t.Errorf("Median mutated its input: %v", x)
	}
}

func TestPercentile(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{100, 10},
		{50, 5.5},
		{25, 3.25},
		{90, 9.1},
		{99, 9.91},
	}
	for _, c := range cases {
		if got := Percentile(x, c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileSortedMatchesPercentile(t *testing.T) {
	x := []float64{9, 1, 5, 3, 7, 2, 8, 4, 6}
	s := Sorted(x)
	for _, p := range []float64{0, 10, 33, 50, 75, 99, 100} {
		if a, b := Percentile(x, p), PercentileSorted(s, p); !almostEqual(a, b, 1e-12) {
			t.Errorf("p=%v: Percentile=%v PercentileSorted=%v", p, a, b)
		}
	}
}

func TestMinMax(t *testing.T) {
	x := []float64{3, -2, 8, 0}
	if Min(x) != -2 {
		t.Errorf("Min = %v, want -2", Min(x))
	}
	if Max(x) != 8 {
		t.Errorf("Max = %v, want 8", Max(x))
	}
}

func TestSummarize(t *testing.T) {
	x := make([]float64, 100)
	for i := range x {
		x[i] = float64(i + 1) // 1..100
	}
	s := Summarize(x)
	if s.N != 100 {
		t.Errorf("N = %d", s.N)
	}
	if !almostEqual(s.Mean, 50.5, 1e-12) {
		t.Errorf("Mean = %v", s.Mean)
	}
	if !almostEqual(s.Median, 50.5, 1e-12) {
		t.Errorf("Median = %v", s.Median)
	}
	if s.Min != 1 || s.Max != 100 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if !almostEqual(s.P99, 99.01, 1e-9) {
		t.Errorf("P99 = %v, want 99.01", s.P99)
	}
	empty := Summarize(nil)
	if !math.IsNaN(empty.Mean) || empty.N != 0 {
		t.Error("Summarize(nil) should be NaN-filled with N=0")
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	x := []float64{10, 10, 10, 10}
	if got := CoefficientOfVariation(x); !almostEqual(got, 0, 1e-12) {
		t.Errorf("CV of constant data = %v, want 0", got)
	}
}

// Property: median is always within [min, max] and percentiles are monotone.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		x := make([]float64, 0, len(raw))
		for _, v := range raw {
			// Keep magnitudes where linear interpolation cannot overflow.
			if !math.IsNaN(v) && math.Abs(v) < 1e300 {
				x = append(x, v)
			}
		}
		if len(x) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(x, p)
			if v < prev {
				return false
			}
			prev = v
		}
		med := Median(x)
		return med >= Min(x) && med <= Max(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mean lies within [min, max].
func TestPropertyMeanBounded(t *testing.T) {
	f := func(raw []float64) bool {
		x := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && math.Abs(v) < 1e100 {
				x = append(x, v)
			}
		}
		if len(x) == 0 {
			return true
		}
		m := Mean(x)
		return m >= Min(x)-1e-9 && m <= Max(x)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
