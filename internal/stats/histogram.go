package stats

import (
	"fmt"
	"math"
	"strings"
)

// HistogramBin is one bucket of a frequency chart.
type HistogramBin struct {
	Lo, Hi float64 // [Lo, Hi)
	Count  int
}

// Histogram is the frequency-chart structure behind the paper's Figure 9
// (frequency of occurrence of average response times across runs).
type Histogram struct {
	Bins     []HistogramBin
	Overflow int     // samples ≥ the last bin's Hi (the paper's "More" bar)
	Median   float64 // the bar the paper highlights in red
}

// NewHistogram buckets x into `bins` equal-width buckets spanning
// [min, min+bins·width); width defaults to (max−min)/bins when width ≤ 0.
func NewHistogram(x []float64, bins int, width float64) (*Histogram, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("%w: histogram of no samples", ErrInsufficientData)
	}
	if bins < 1 {
		return nil, fmt.Errorf("stats: histogram needs ≥1 bin, got %d", bins)
	}
	lo := Min(x)
	hi := Max(x)
	if width <= 0 {
		if hi == lo {
			width = 1
		} else {
			width = (hi - lo) / float64(bins)
		}
	}
	h := &Histogram{Median: Median(x)}
	h.Bins = make([]HistogramBin, bins)
	for i := range h.Bins {
		h.Bins[i].Lo = lo + float64(i)*width
		h.Bins[i].Hi = lo + float64(i+1)*width
	}
	limit := lo + float64(bins)*width
	for _, v := range x {
		if v >= limit {
			h.Overflow++
			continue
		}
		idx := int((v - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= bins {
			idx = bins - 1
		}
		h.Bins[idx].Count++
	}
	return h, nil
}

// MedianBin returns the index of the bin containing the median, or -1 when
// the median overflowed.
func (h *Histogram) MedianBin() int {
	for i, b := range h.Bins {
		if h.Median >= b.Lo && h.Median < b.Hi {
			return i
		}
	}
	return -1
}

// Render draws the histogram as horizontal ASCII bars; the median bin is
// marked with '◄ median' mirroring the red bar in the paper's Figure 9.
func (h *Histogram) Render(label string, maxWidth int) string {
	if maxWidth < 10 {
		maxWidth = 10
	}
	maxCount := h.Overflow
	for _, b := range h.Bins {
		if b.Count > maxCount {
			maxCount = b.Count
		}
	}
	if maxCount == 0 {
		maxCount = 1
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", label)
	medianIdx := h.MedianBin()
	for i, b := range h.Bins {
		bar := strings.Repeat("#", int(math.Round(float64(b.Count)/float64(maxCount)*float64(maxWidth))))
		marker := ""
		if i == medianIdx {
			marker = "  ◄ median"
		}
		fmt.Fprintf(&sb, "%10.1f │%-*s %3d%s\n", b.Lo, maxWidth, bar, b.Count, marker)
	}
	if h.Overflow > 0 {
		bar := strings.Repeat("#", int(math.Round(float64(h.Overflow)/float64(maxCount)*float64(maxWidth))))
		fmt.Fprintf(&sb, "%10s │%-*s %3d\n", "More", maxWidth, bar, h.Overflow)
	}
	return sb.String()
}
