package stats

import (
	"errors"
	"testing"

	"repro/internal/rng"
)

func TestADFStationaryWhiteNoise(t *testing.T) {
	s := rng.New(50)
	y := make([]float64, 300)
	for i := range y {
		y[i] = s.Normal(100, 5)
	}
	res, err := ADF(y, DefaultADFLags(len(y)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stationary() {
		t.Errorf("white noise not stationary: t=%v (crit %v)", res.Statistic, res.Critical5)
	}
}

func TestADFRandomWalkNotStationary(t *testing.T) {
	s := rng.New(51)
	y := make([]float64, 300)
	y[0] = 100
	for i := 1; i < len(y); i++ {
		y[i] = y[i-1] + s.Normal(0, 1)
	}
	res, err := ADF(y, DefaultADFLags(len(y)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stationary() {
		t.Errorf("random walk reported stationary: t=%v", res.Statistic)
	}
}

func TestADFMeanRevertingAR1(t *testing.T) {
	// AR(1) with φ=0.5 strongly mean-reverts → stationary.
	s := rng.New(52)
	y := make([]float64, 400)
	for i := 1; i < len(y); i++ {
		y[i] = 0.5*y[i-1] + s.Normal(0, 1)
	}
	res, err := ADF(y, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stationary() {
		t.Errorf("AR(1) φ=0.5 not stationary: t=%v", res.Statistic)
	}
}

func TestADFDriftingLatencySeries(t *testing.T) {
	// A latency series with a slow upward drift (thermal throttling, cache
	// leak) — the case Lancet's stationarity check exists to catch. A
	// trending series should not look strongly stationary.
	s := rng.New(53)
	y := make([]float64, 300)
	for i := range y {
		y[i] = 100 + 0.5*float64(i) + s.Normal(0, 1)
	}
	res, err := ADF(y, DefaultADFLags(len(y)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stationary() {
		t.Errorf("strongly trending series reported stationary: t=%v", res.Statistic)
	}
}

func TestADFErrors(t *testing.T) {
	short := []float64{1, 2, 3}
	if _, err := ADF(short, 0); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("want ErrInsufficientData, got %v", err)
	}
	y := make([]float64, 50)
	if _, err := ADF(y, -1); err == nil {
		t.Error("negative lags accepted")
	}
	// Constant series → degenerate regression.
	for i := range y {
		y[i] = 7
	}
	if _, err := ADF(y, 1); err == nil {
		t.Error("constant series accepted")
	}
}

func TestDefaultADFLags(t *testing.T) {
	if DefaultADFLags(5) != 0 {
		t.Error("tiny n should use 0 lags")
	}
	if got := DefaultADFLags(1000); got != 10 {
		t.Errorf("lags(1000) = %d, want 10", got)
	}
}

func TestOLSRecoversCoefficients(t *testing.T) {
	// y = 3 + 2x with noise: OLS should recover α≈3, β≈2.
	s := rng.New(54)
	rows := 200
	X := make([][]float64, rows)
	y := make([]float64, rows)
	for i := 0; i < rows; i++ {
		x := s.Float64() * 10
		X[i] = []float64{1, x}
		y[i] = 3 + 2*x + s.Normal(0, 0.1)
	}
	beta, se, err := olsWithSE(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if beta[0] < 2.9 || beta[0] > 3.1 {
		t.Errorf("intercept = %v, want ≈3", beta[0])
	}
	if beta[1] < 1.99 || beta[1] > 2.01 {
		t.Errorf("slope = %v, want ≈2", beta[1])
	}
	if se[1] <= 0 || se[1] > 0.01 {
		t.Errorf("slope SE = %v, want small positive", se[1])
	}
}

func TestInvertSingular(t *testing.T) {
	if _, err := invert([][]float64{{1, 2}, {2, 4}}); err == nil {
		t.Error("singular matrix inverted")
	}
}
