package stats

import (
	"strings"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	x := []float64{1, 1.5, 2, 2.5, 3, 9.5}
	h, err := NewHistogram(x, 3, 1) // bins [1,2) [2,3) [3,4), overflow ≥4
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Bins[0].Count; got != 2 {
		t.Errorf("bin0 = %d, want 2 (1, 1.5)", got)
	}
	if got := h.Bins[1].Count; got != 2 {
		t.Errorf("bin1 = %d, want 2 (2, 2.5)", got)
	}
	if got := h.Bins[2].Count; got != 1 {
		t.Errorf("bin2 = %d, want 1 (3)", got)
	}
	if h.Overflow != 1 {
		t.Errorf("overflow = %d, want 1 (9.5)", h.Overflow)
	}
	total := h.Overflow
	for _, b := range h.Bins {
		total += b.Count
	}
	if total != len(x) {
		t.Errorf("histogram total = %d, want %d", total, len(x))
	}
}

func TestHistogramAutoWidth(t *testing.T) {
	x := []float64{0, 10}
	h, err := NewHistogram(x, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bins[0].Hi-h.Bins[0].Lo != 2 {
		t.Errorf("auto width = %v, want 2", h.Bins[0].Hi-h.Bins[0].Lo)
	}
}

func TestHistogramConstantData(t *testing.T) {
	x := []float64{5, 5, 5}
	h, err := NewHistogram(x, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bins[0].Count != 3 {
		t.Errorf("constant data: bin0 = %d, want 3", h.Bins[0].Count)
	}
}

func TestHistogramMedianBin(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	h, err := NewHistogram(x, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.MedianBin(); got != 4 {
		t.Errorf("median bin = %d, want 4 (value 5)", got)
	}
}

func TestHistogramRender(t *testing.T) {
	x := []float64{91, 92, 92, 93, 93, 93, 94, 105, 120}
	h, err := NewHistogram(x, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := h.Render("Average Response Time (us)", 20)
	if !strings.Contains(out, "median") {
		t.Error("render missing median marker")
	}
	if !strings.Contains(out, "More") {
		t.Error("render missing overflow bar")
	}
	if !strings.Contains(out, "Average Response Time") {
		t.Error("render missing label")
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 5, 0); err == nil {
		t.Error("empty data should error")
	}
	if _, err := NewHistogram([]float64{1}, 0, 0); err == nil {
		t.Error("zero bins should error")
	}
}
