// Package stats implements the statistical methodology of the paper's
// Section III: descriptive summaries, parametric and non-parametric
// confidence intervals (Eqs. 1–2), the Jain sample-size rule (Eq. 3), the
// CONFIRM repetition estimator, the Shapiro–Wilk normality test, and the
// sample-independence diagnostics (autocorrelation, turning-point test,
// lag plots) the paper lists for assessing iid-ness.
//
// All functions operate on plain []float64 samples and are deterministic;
// the only randomized procedure (CONFIRM) takes an explicit random stream.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData indicates that a procedure was handed fewer samples
// than it mathematically requires.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean. It returns NaN for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	return sum / float64(len(x))
}

// Variance returns the unbiased (n−1) sample variance. It returns NaN for
// fewer than two samples.
func Variance(x []float64) float64 {
	n := len(x)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(x)
	ss := 0.0
	for _, v := range x {
		d := v - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(x []float64) float64 {
	return math.Sqrt(Variance(x))
}

// Min returns the smallest sample. It returns NaN for an empty slice.
func Min(x []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	m := x[0]
	for _, v := range x[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample. It returns NaN for an empty slice.
func Max(x []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Sorted returns a sorted copy of x.
func Sorted(x []float64) []float64 {
	c := append([]float64(nil), x...)
	sort.Float64s(c)
	return c
}

// Median returns the sample median (average of the two central order
// statistics for even n). It returns NaN for an empty slice.
func Median(x []float64) float64 {
	n := len(x)
	if n == 0 {
		return math.NaN()
	}
	c := Sorted(x)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks (the same estimator NumPy's default
// and most load generators use). It returns NaN for an empty slice.
func Percentile(x []float64, p float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	return PercentileSorted(Sorted(x), p)
}

// PercentileSorted is Percentile for data already sorted ascending,
// avoiding the copy. The caller must guarantee sortedness.
func PercentileSorted(c []float64, p float64) float64 {
	n := len(c)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return c[lo]
	}
	frac := rank - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// Summary bundles the descriptive statistics the experiment harness reports
// for every metric.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	StdDev float64
	Min    float64
	Max    float64
	P90    float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary in one pass over a sorted copy.
func Summarize(x []float64) Summary {
	if len(x) == 0 {
		nan := math.NaN()
		return Summary{Mean: nan, Median: nan, StdDev: nan, Min: nan, Max: nan, P90: nan, P95: nan, P99: nan}
	}
	c := Sorted(x)
	n := len(c)
	med := c[n/2]
	if n%2 == 0 {
		med = (c[n/2-1] + c[n/2]) / 2
	}
	return Summary{
		N:      n,
		Mean:   Mean(c),
		Median: med,
		StdDev: StdDev(c),
		Min:    c[0],
		Max:    c[n-1],
		P90:    PercentileSorted(c, 90),
		P95:    PercentileSorted(c, 95),
		P99:    PercentileSorted(c, 99),
	}
}

// CoefficientOfVariation returns StdDev/Mean, a scale-free dispersion
// measure used when comparing variability across configurations whose
// absolute latencies differ (e.g. Fig. 5 discussion).
func CoefficientOfVariation(x []float64) float64 {
	m := Mean(x)
	if m == 0 {
		return math.NaN()
	}
	return StdDev(x) / m
}
