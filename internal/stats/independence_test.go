package stats

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
)

func TestAutocorrelationIID(t *testing.T) {
	s := rng.New(30)
	x := make([]float64, 2000)
	for i := range x {
		x[i] = s.Normal(0, 1)
	}
	r, err := Autocorrelation(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) > 0.08 {
		t.Errorf("lag-1 ACF of iid data = %v, want ≈0", r)
	}
}

func TestAutocorrelationTrend(t *testing.T) {
	// A strong trend yields lag-1 autocorrelation near +1 — the ordering
	// bias the paper cites OrderSage for.
	x := make([]float64, 200)
	for i := range x {
		x[i] = float64(i)
	}
	r, err := Autocorrelation(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.9 {
		t.Errorf("lag-1 ACF of trend = %v, want near 1", r)
	}
}

func TestAutocorrelationAlternating(t *testing.T) {
	x := make([]float64, 100)
	for i := range x {
		x[i] = float64(i % 2)
	}
	r, err := Autocorrelation(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r > -0.9 {
		t.Errorf("lag-1 ACF of alternating series = %v, want near -1", r)
	}
}

func TestAutocorrelationBounds(t *testing.T) {
	// The paper: "The output of the analysis can be anything between -1 and 1."
	s := rng.New(31)
	for rep := 0; rep < 20; rep++ {
		n := 10 + s.Intn(100)
		x := make([]float64, n)
		for i := range x {
			x[i] = s.Float64()
		}
		for lag := 1; lag < n; lag += 7 {
			r, err := Autocorrelation(x, lag)
			if err != nil {
				t.Fatal(err)
			}
			if r < -1.000001 || r > 1.000001 {
				t.Fatalf("ACF out of [-1,1]: %v (n=%d lag=%d)", r, n, lag)
			}
		}
	}
}

func TestAutocorrelationErrors(t *testing.T) {
	if _, err := Autocorrelation([]float64{1, 2, 3}, 0); err == nil {
		t.Error("lag 0 should error")
	}
	if _, err := Autocorrelation([]float64{1, 2, 3}, 3); err == nil {
		t.Error("lag ≥ n should error")
	}
	if _, err := Autocorrelation([]float64{5, 5, 5}, 1); err == nil {
		t.Error("constant data should error")
	}
}

func TestAutocorrelationFunction(t *testing.T) {
	s := rng.New(32)
	x := make([]float64, 100)
	for i := range x {
		x[i] = s.Normal(0, 1)
	}
	acf, err := AutocorrelationFunction(x, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(acf) != 10 {
		t.Fatalf("ACF length = %d, want 10", len(acf))
	}
	// maxLag clamping
	acf, err = AutocorrelationFunction(x[:5], 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(acf) != 4 {
		t.Errorf("clamped ACF length = %d, want 4", len(acf))
	}
}

func TestTurningPointIID(t *testing.T) {
	s := rng.New(33)
	x := make([]float64, 500)
	for i := range x {
		x[i] = s.Float64()
	}
	r, err := TurningPointTest(x)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Random(0.05) {
		t.Errorf("iid data failed turning-point test: tp=%d expected=%v p=%v", r.TurningPoints, r.Expected, r.PValue)
	}
}

func TestTurningPointMonotone(t *testing.T) {
	x := make([]float64, 100)
	for i := range x {
		x[i] = float64(i)
	}
	r, err := TurningPointTest(x)
	if err != nil {
		t.Fatal(err)
	}
	if r.TurningPoints != 0 {
		t.Errorf("monotone series has %d turning points", r.TurningPoints)
	}
	if r.Random(0.05) {
		t.Error("monotone series passed the randomness test")
	}
}

func TestTurningPointInsufficient(t *testing.T) {
	if _, err := TurningPointTest([]float64{1, 2}); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("want ErrInsufficientData, got %v", err)
	}
}

func TestSpearmanPerfectMonotone(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 100, 1000, 10000, 100000} // monotone, non-linear
	rho, err := SpearmanRho(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1) > 1e-12 {
		t.Errorf("Spearman of monotone pair = %v, want 1", rho)
	}
	yrev := []float64{5, 4, 3, 2, 1}
	rho, err = SpearmanRho(x, yrev)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho+1) > 1e-12 {
		t.Errorf("Spearman of reversed pair = %v, want -1", rho)
	}
}

func TestSpearmanIndependent(t *testing.T) {
	s := rng.New(34)
	x := make([]float64, 1000)
	y := make([]float64, 1000)
	for i := range x {
		x[i] = s.Float64()
		y[i] = s.Float64()
	}
	rho, err := SpearmanRho(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho) > 0.1 {
		t.Errorf("Spearman of independent series = %v, want ≈0", rho)
	}
}

func TestSpearmanTies(t *testing.T) {
	x := []float64{1, 1, 2, 2, 3}
	y := []float64{1, 1, 2, 2, 3}
	rho, err := SpearmanRho(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1) > 1e-12 {
		t.Errorf("Spearman with aligned ties = %v, want 1", rho)
	}
}

func TestSpearmanErrors(t *testing.T) {
	if _, err := SpearmanRho([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := SpearmanRho([]float64{1, 2}, []float64{3, 4}); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("want ErrInsufficientData, got %v", err)
	}
	if _, err := SpearmanRho([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("constant series should error")
	}
}

func TestLagPlot(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	xs, ys, err := LagPlot(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 3 || len(ys) != 3 {
		t.Fatalf("lag plot lengths %d/%d, want 3/3", len(xs), len(ys))
	}
	if xs[0] != 1 || ys[0] != 3 {
		t.Errorf("lag plot pair (%v, %v), want (1, 3)", xs[0], ys[0])
	}
	if _, _, err := LagPlot(x, 5); err == nil {
		t.Error("lag ≥ n should error")
	}
}

func TestAndersonDarlingNormal(t *testing.T) {
	s := rng.New(35)
	x := make([]float64, 200)
	for i := range x {
		x[i] = s.Normal(50, 5)
	}
	r, err := AndersonDarling(x)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Normal() {
		t.Errorf("normal data failed AD test: A2=%v", r.A2)
	}
}

func TestAndersonDarlingExponential(t *testing.T) {
	s := rng.New(36)
	x := make([]float64, 200)
	for i := range x {
		x[i] = s.Exp(1)
	}
	r, err := AndersonDarling(x)
	if err != nil {
		t.Fatal(err)
	}
	if r.Normal() {
		t.Errorf("exponential data passed AD normality: A2=%v", r.A2)
	}
}

func TestAndersonDarlingErrors(t *testing.T) {
	if _, err := AndersonDarling([]float64{1, 2, 3}); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("want ErrInsufficientData, got %v", err)
	}
	c := make([]float64, 20)
	for i := range c {
		c[i] = 7
	}
	if _, err := AndersonDarling(c); err == nil {
		t.Error("constant data should error")
	}
}
