package stats

import (
	"fmt"
	"math"
	"sort"
)

// This file holds the streaming (sketch-based) counterparts of the
// package's batch estimators: an online moment accumulator and a
// log-bucketed quantile histogram. They are what internal/metrics builds
// its bounded-memory Streaming recorder from; the batch functions above
// remain the exact reference the sketches are tested against.

// Welford accumulates count, mean, variance, minimum and maximum of a
// sample stream in O(1) memory using Welford's online algorithm. The
// mean and the unbiased variance it reports are exact up to floating
// point (and numerically better conditioned than a naive sum of
// squares). The zero value is an empty accumulator.
type Welford struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add consumes one sample.
func (w *Welford) Add(v float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = v, v
	} else {
		if v < w.min {
			w.min = v
		}
		if v > w.max {
			w.max = v
		}
	}
	d := v - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (v - w.mean)
}

// N returns the number of samples consumed.
func (w *Welford) N() int { return w.n }

// Merge folds another accumulator into w, as if w had also consumed
// every sample o consumed (Chan et al.'s parallel variance update). The
// result is exact up to floating point — merged mean and variance match
// a single accumulator over the concatenated streams — which is what
// lets cross-run aggregate moments be built from per-run accumulators
// without retaining any samples. o is unchanged.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}

// Mean returns the running mean. It returns NaN for an empty accumulator.
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the unbiased (n−1) sample variance. It returns NaN
// for fewer than two samples.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest sample seen. It returns NaN when empty.
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.min
}

// Max returns the largest sample seen. It returns NaN when empty.
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.max
}

// logHistogramMinValue is the magnitude below which samples are counted
// in the zero bucket: 1e-9 is far below the µs-scale resolution of any
// latency this repository measures.
const logHistogramMinValue = 1e-9

// LogHistogram is a fixed-relative-resolution quantile sketch in the
// style of DDSketch (Masson et al., VLDB'19): samples are counted in
// geometrically sized buckets whose width is set by a relative accuracy
// α, so any quantile estimate q̂ satisfies
//
//	|q̂ − q| ≤ α·q
//
// where q is the corresponding order statistic of the recorded stream
// (the documented error bound callers may rely on). Bucket i covers
// (γ^(i−1), γ^i] with γ = (1+α)/(1−α) and reports the estimate
// 2γ^i/(γ+1), the point with equal relative error to both bucket edges.
// Negative samples land in a mirrored bucket map and magnitudes below
// 1e-9 in a zero bucket, so the sketch accepts any float64 series.
//
// Memory is O(number of resident buckets) = O(log(max/min)/log γ),
// independent of the sample count: the full 1 ns – 1000 s span at α=1%
// needs under ~1400 buckets, which is what turns per-run measurement
// memory from O(samples) into O(1).
type LogHistogram struct {
	alpha    float64
	gamma    float64
	invLogG  float64 // 1 / ln(γ)
	estScale float64 // 2/(γ+1): estimate(i) = estScale · γ^i
	pos, neg map[int]int
	zero     int
	n        int
}

// NewLogHistogram returns an empty sketch with relative accuracy alpha
// (0 < alpha < 1). Typical use: 0.01 for a 1% quantile error bound.
func NewLogHistogram(alpha float64) (*LogHistogram, error) {
	if !(alpha > 0 && alpha < 1) {
		return nil, fmt.Errorf("stats: log histogram accuracy must be in (0,1), got %v", alpha)
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &LogHistogram{
		alpha:    alpha,
		gamma:    gamma,
		invLogG:  1 / math.Log(gamma),
		estScale: 2 / (gamma + 1),
		pos:      make(map[int]int),
		neg:      make(map[int]int),
	}, nil
}

// RelativeAccuracy returns the α the sketch was built with.
func (h *LogHistogram) RelativeAccuracy() float64 { return h.alpha }

// index returns the bucket for magnitude v > 0: the smallest i with
// γ^i ≥ v, i.e. ⌈ln v / ln γ⌉.
func (h *LogHistogram) index(v float64) int {
	return int(math.Ceil(math.Log(v) * h.invLogG))
}

// estimate returns bucket i's representative value.
func (h *LogHistogram) estimate(i int) float64 {
	return h.estScale * math.Pow(h.gamma, float64(i))
}

// Add consumes one sample.
func (h *LogHistogram) Add(v float64) {
	h.n++
	switch {
	case v > logHistogramMinValue:
		h.pos[h.index(v)]++
	case v < -logHistogramMinValue:
		h.neg[h.index(-v)]++
	default:
		h.zero++
	}
}

// N returns the number of samples consumed.
func (h *LogHistogram) N() int { return h.n }

// Merge folds another sketch into h. Both sketches must have been built
// with the same relative accuracy: their buckets then align exactly, the
// merge is a per-bucket counter sum, and the merged sketch is identical
// to one that consumed both streams directly — so the α error bound
// holds for quantiles of the combined distribution. This is what makes
// cross-run aggregate latency distributions O(buckets) instead of
// O(total samples): runs keep sketches, not reservoirs. o is unchanged.
func (h *LogHistogram) Merge(o *LogHistogram) error {
	if o.alpha != h.alpha {
		return fmt.Errorf("stats: cannot merge log histograms with accuracies %v and %v", h.alpha, o.alpha)
	}
	for k, c := range o.pos {
		h.pos[k] += c
	}
	for k, c := range o.neg {
		h.neg[k] += c
	}
	h.zero += o.zero
	h.n += o.n
	return nil
}

// Buckets returns the number of resident buckets — the sketch's memory
// footprint in units of one counter, bounded by the dynamic range of
// the data and independent of N.
func (h *LogHistogram) Buckets() int { return len(h.pos) + len(h.neg) }

// Quantile returns the estimate for the p-th percentile (p in [0,100])
// of the recorded stream, within the sketch's relative error bound of
// the true order statistic. It returns NaN when the sketch is empty.
func (h *LogHistogram) Quantile(p float64) float64 {
	return h.Quantiles(p)[0]
}

// Quantiles evaluates several percentiles in one ordered walk over the
// buckets. Results are index-aligned with ps.
func (h *LogHistogram) Quantiles(ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if h.n == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	// Target ranks, using the same floor(p/100·(n−1)) convention as
	// Percentile; the sketch cannot interpolate within a bucket, so the
	// estimate is the bucket holding the target order statistic.
	type target struct {
		rank int
		pos  int
	}
	targets := make([]target, len(ps))
	for i, p := range ps {
		r := 0
		switch {
		case p <= 0:
			r = 0
		case p >= 100:
			r = h.n - 1
		default:
			r = int(p / 100 * float64(h.n-1))
		}
		targets[i] = target{rank: r, pos: i}
	}
	sort.Slice(targets, func(a, b int) bool { return targets[a].rank < targets[b].rank })

	// Walk buckets in ascending value order: negatives (descending
	// magnitude), zero, positives (ascending magnitude).
	negKeys := make([]int, 0, len(h.neg))
	for k := range h.neg {
		negKeys = append(negKeys, k)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(negKeys)))
	posKeys := make([]int, 0, len(h.pos))
	for k := range h.pos {
		posKeys = append(posKeys, k)
	}
	sort.Ints(posKeys)

	ti := 0
	cum := 0
	advance := func(count int, value float64) {
		cum += count
		for ti < len(targets) && targets[ti].rank < cum {
			out[targets[ti].pos] = value
			ti++
		}
	}
	for _, k := range negKeys {
		advance(h.neg[k], -h.estimate(k))
	}
	advance(h.zero, 0)
	for _, k := range posKeys {
		advance(h.pos[k], h.estimate(k))
	}
	return out
}
