package stats

import (
	"fmt"
	"math"
	"sort"
)

// ShapiroWilkResult holds the test statistic and p-value of a Shapiro–Wilk
// normality test. The paper (Fig. 8, Table IV) rejects normality when the
// p-value falls below the significance threshold (0.05).
type ShapiroWilkResult struct {
	W      float64 // test statistic in (0, 1]; near 1 means normal-looking
	PValue float64
	N      int
}

// Normal reports whether the data is consistent with a normal distribution
// at the given significance level (the test fails to reject normality).
func (r ShapiroWilkResult) Normal(alpha float64) bool {
	return r.PValue >= alpha
}

// ShapiroWilk runs the Shapiro–Wilk W test for normality using Royston's
// AS R94 algorithm (Applied Statistics 44, 1995), the same algorithm
// behind R's shapiro.test and SciPy's shapiro. Valid for 3 ≤ n ≤ 5000.
func ShapiroWilk(x []float64) (ShapiroWilkResult, error) {
	n := len(x)
	if n < 3 {
		return ShapiroWilkResult{}, fmt.Errorf("%w: Shapiro–Wilk needs ≥3 samples, have %d", ErrInsufficientData, n)
	}
	if n > 5000 {
		return ShapiroWilkResult{}, fmt.Errorf("stats: Shapiro–Wilk approximation invalid beyond 5000 samples, have %d", n)
	}

	sorted := append([]float64(nil), x...)
	sort.Float64s(sorted)
	if sorted[0] == sorted[n-1] {
		return ShapiroWilkResult{}, fmt.Errorf("stats: Shapiro–Wilk undefined for constant data")
	}

	// Expected values of normal order statistics (Blom approximation) and
	// the weight vector a.
	m := make([]float64, n)
	ssumM2 := 0.0
	for i := 0; i < n; i++ {
		m[i] = NormalQuantile((float64(i+1) - 0.375) / (float64(n) + 0.25))
		ssumM2 += m[i] * m[i]
	}

	a := make([]float64, n)
	rsn := 1 / math.Sqrt(float64(n))
	if n == 3 {
		a[0] = math.Sqrt(0.5)
		a[2] = -a[0]
	} else {
		// Polynomial corrections for the extreme weights (Royston 1995).
		an := -2.706056*pow5(rsn) + 4.434685*pow4(rsn) - 2.071190*pow3(rsn) - 0.147981*rsn*rsn + 0.221157*rsn + m[n-1]/math.Sqrt(ssumM2)
		var an1 float64
		var phi float64
		if n > 5 {
			an1 = -3.582633*pow5(rsn) + 5.682633*pow4(rsn) - 1.752461*pow3(rsn) - 0.293762*rsn*rsn + 0.042981*rsn + m[n-2]/math.Sqrt(ssumM2)
			phi = (ssumM2 - 2*m[n-1]*m[n-1] - 2*m[n-2]*m[n-2]) / (1 - 2*an*an - 2*an1*an1)
			a[n-1], a[n-2] = an, an1
			a[0], a[1] = -an, -an1
			for i := 2; i < n-2; i++ {
				a[i] = m[i] / math.Sqrt(phi)
			}
		} else {
			phi = (ssumM2 - 2*m[n-1]*m[n-1]) / (1 - 2*an*an)
			a[n-1] = an
			a[0] = -an
			for i := 1; i < n-1; i++ {
				a[i] = m[i] / math.Sqrt(phi)
			}
		}
	}

	// W statistic.
	mean := Mean(sorted)
	num, den := 0.0, 0.0
	for i, v := range sorted {
		num += a[i] * v
		d := v - mean
		den += d * d
	}
	w := num * num / den
	if w > 1 {
		w = 1 // guard against rounding slightly above 1
	}

	// P-value via the normalizing transformations of Royston (1992/1995).
	var pval float64
	switch {
	case n == 3:
		// Exact small-sample distribution.
		pval = (6 / math.Pi) * (math.Asin(math.Sqrt(w)) - math.Asin(math.Sqrt(0.75)))
		if pval < 0 {
			pval = 0
		}
	case n <= 11:
		fn := float64(n)
		gamma := -2.273 + 0.459*fn
		lw := -math.Log(gamma - math.Log1p(-w))
		mu := 0.5440 - 0.39978*fn + 0.025054*fn*fn - 0.0006714*fn*fn*fn
		sigma := math.Exp(1.3822 - 0.77857*fn + 0.062767*fn*fn - 0.0020322*fn*fn*fn)
		pval = 1 - NormalCDF((lw-mu)/sigma)
	default:
		lnN := math.Log(float64(n))
		lw := math.Log1p(-w)
		mu := -1.5861 - 0.31082*lnN - 0.083751*lnN*lnN + 0.0038915*lnN*lnN*lnN
		sigma := math.Exp(-0.4803 - 0.082676*lnN + 0.0030302*lnN*lnN)
		pval = 1 - NormalCDF((lw-mu)/sigma)
	}

	return ShapiroWilkResult{W: w, PValue: pval, N: n}, nil
}

func pow3(x float64) float64 { return x * x * x }
func pow4(x float64) float64 { return x * x * x * x }
func pow5(x float64) float64 { return x * x * x * x * x }
