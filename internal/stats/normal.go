package stats

import "math"

// NormalCDF returns Φ(z), the standard normal cumulative distribution
// function, computed from the complementary error function for accuracy in
// both tails.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalQuantile returns Φ⁻¹(p) for p in (0,1), using Wichura's algorithm
// AS 241 (PPND16), accurate to about 1e-16 over the full range. It is the
// building block for the z-scores in the paper's CI equations and for the
// expected normal order statistics in the Shapiro–Wilk test.
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		if p == 0 {
			return math.Inf(-1)
		}
		if p == 1 {
			return math.Inf(1)
		}
		return math.NaN()
	}

	q := p - 0.5
	if math.Abs(q) <= 0.425 {
		// Central region: rational approximation in r = 0.180625 − q².
		r := 0.180625 - q*q
		return q * (((((((2.5090809287301226727e+3*r+3.3430575583588128105e+4)*r+6.7265770927008700853e+4)*r+4.5921953931549871457e+4)*r+1.3731693765509461125e+4)*r+1.9715909503065514427e+3)*r+1.3314166789178437745e+2)*r + 3.3871328727963666080e0) /
			(((((((5.2264952788528545610e+3*r+2.8729085735721942674e+4)*r+3.9307895800092710610e+4)*r+2.1213794301586595867e+4)*r+5.3941960214247511077e+3)*r+6.8718700749205790830e+2)*r+4.2313330701600911252e+1)*r + 1.0)
	}

	// Tail regions.
	r := p
	if q > 0 {
		r = 1 - p
	}
	r = math.Sqrt(-math.Log(r))
	var x float64
	if r <= 5 {
		r -= 1.6
		x = (((((((7.74545014278341407640e-4*r+2.27238449892691845833e-2)*r+2.41780725177450611770e-1)*r+1.27045825245236838258e0)*r+3.64784832476320460504e0)*r+5.76949722146069140550e0)*r+4.63033784615654529590e0)*r + 1.42343711074968357734e0) /
			(((((((1.05075007164441684324e-9*r+5.47593808499534494600e-4)*r+1.51986665636164571966e-2)*r+1.48103976427480074590e-1)*r+6.89767334985100004550e-1)*r+1.67638483018380384940e0)*r+2.05319162663775882187e0)*r + 1.0)
	} else {
		r -= 5
		x = (((((((2.01033439929228813265e-7*r+2.71155556874348757815e-5)*r+1.24266094738807843860e-3)*r+2.65321895265761230930e-2)*r+2.96560571828504891230e-1)*r+1.78482653991729133580e0)*r+5.46378491116411436990e0)*r + 6.65790464350110377720e0) /
			(((((((2.04426310338993978564e-15*r+1.42151175831644588870e-7)*r+1.84631831751005468180e-5)*r+7.86869131145613259100e-4)*r+1.48753612908506148525e-2)*r+1.36929880922735805310e-1)*r+5.99832206555887937690e-1)*r + 1.0)
	}
	if q < 0 {
		return -x
	}
	return x
}
