package stats

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
)

func TestJainIterationsHandComputed(t *testing.T) {
	// Construct a pilot with mean 100 and sd 5:
	// n = (100·1.96·5 / (1·100))² = (9.8)² = 96.04 → 97.
	x := []float64{95, 105, 95, 105, 95, 105, 95, 105}
	mean := Mean(x) // 100
	sd := StdDev(x)
	want := int(math.Ceil(math.Pow(100*1.959964*sd/(1*mean), 2)))
	got, err := JainIterations(x, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("JainIterations = %d, want %d", got, want)
	}
}

func TestJainIterationsLowVariance(t *testing.T) {
	// Nearly constant data → 1 iteration, matching the paper's Table IV
	// HP rows at low QPS ("parametric method estimates just one iteration").
	x := []float64{100, 100.01, 99.99, 100, 100.005, 99.995}
	got, err := JainIterations(x, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("JainIterations for near-constant data = %d, want 1", got)
	}
}

func TestJainIterationsScalesWithVariance(t *testing.T) {
	s := rng.New(7)
	low := make([]float64, 50)
	high := make([]float64, 50)
	for i := range low {
		low[i] = s.Normal(100, 1)
		high[i] = s.Normal(100, 10)
	}
	nLow, err := JainIterations(low, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	nHigh, err := JainIterations(high, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if nHigh <= nLow {
		t.Errorf("higher variance should need more iterations: low=%d high=%d", nLow, nHigh)
	}
	// Variance ×100 → iterations ×≈100.
	ratio := float64(nHigh) / float64(nLow)
	if ratio < 30 || ratio > 300 {
		t.Errorf("iteration ratio = %v, want ≈100", ratio)
	}
}

func TestJainIterationsErrors(t *testing.T) {
	if _, err := JainIterations([]float64{1}, 0.95, 1); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("want ErrInsufficientData, got %v", err)
	}
	if _, err := JainIterations([]float64{1, 2}, 0.95, 0); err == nil {
		t.Error("zero error pct should fail")
	}
	if _, err := JainIterations([]float64{-1, 1}, 0.95, 1); err == nil {
		t.Error("zero mean should fail")
	}
}

func TestConfirmTightDataConvergesAtMinimum(t *testing.T) {
	// Extremely tight data: CONFIRM should return its floor of 10,
	// matching the paper: "The lowest value estimated by CONFIRM is 10".
	s := rng.New(8)
	x := make([]float64, 50)
	for i := range x {
		x[i] = s.Normal(100, 0.05)
	}
	res, err := Confirm(x, DefaultConfirmConfig(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("tight data did not converge")
	}
	if res.Iterations != 10 {
		t.Errorf("Iterations = %d, want 10 (the CONFIRM floor)", res.Iterations)
	}
}

func TestConfirmNoisyDataExceedsSet(t *testing.T) {
	// Very noisy data: no subset of 50 runs achieves 1% error; the paper
	// reports these cases as ">50", which we encode as n+1, Converged=false.
	s := rng.New(10)
	x := make([]float64, 50)
	for i := range x {
		x[i] = s.Normal(100, 40)
	}
	res, err := Confirm(x, DefaultConfirmConfig(), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatalf("noisy data converged at %d iterations with err %.3f%%", res.Iterations, res.AchievedErrPct)
	}
	if res.Iterations != 51 {
		t.Errorf("Iterations = %d, want 51 (>50 sentinel)", res.Iterations)
	}
}

func TestConfirmIntermediateData(t *testing.T) {
	// Moderate noise should land strictly between the floor and the cap.
	s := rng.New(12)
	x := make([]float64, 50)
	for i := range x {
		x[i] = s.Normal(100, 1.2)
	}
	res, err := Confirm(x, DefaultConfirmConfig(), rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("moderate data did not converge")
	}
	if res.Iterations <= 10 || res.Iterations > 50 {
		t.Errorf("Iterations = %d, want in (10, 50]", res.Iterations)
	}
	if res.AchievedErrPct > 1 {
		t.Errorf("achieved error %v%% exceeds target 1%%", res.AchievedErrPct)
	}
}

func TestConfirmDeterministicGivenStream(t *testing.T) {
	s := rng.New(14)
	x := make([]float64, 50)
	for i := range x {
		x[i] = s.Normal(100, 1)
	}
	a, err := Confirm(x, DefaultConfirmConfig(), rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Confirm(x, DefaultConfirmConfig(), rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	if a.Iterations != b.Iterations {
		t.Errorf("CONFIRM not deterministic: %d vs %d", a.Iterations, b.Iterations)
	}
}

func TestConfirmErrors(t *testing.T) {
	if _, err := Confirm([]float64{1, 2, 3}, DefaultConfirmConfig(), rng.New(1)); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("want ErrInsufficientData, got %v", err)
	}
	bad := DefaultConfirmConfig()
	bad.Rounds = 0
	x := make([]float64, 20)
	for i := range x {
		x[i] = float64(i)
	}
	if _, err := Confirm(x, bad, rng.New(1)); err == nil {
		t.Error("zero rounds should fail")
	}
}

func TestConfirmDoesNotMutateInput(t *testing.T) {
	x := make([]float64, 30)
	for i := range x {
		x[i] = 100 + float64(i)*0.001
	}
	orig := append([]float64(nil), x...)
	if _, err := Confirm(x, DefaultConfirmConfig(), rng.New(2)); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if x[i] != orig[i] {
			t.Fatal("Confirm mutated its input")
		}
	}
}
