package stats

import (
	"fmt"
	"math"
)

// ADFResult reports an Augmented Dickey–Fuller unit-root test — the
// stationarity check Lancet applies to its sample stream (§VII-C) before
// trusting aggregate statistics. A latency series that drifts (warming
// caches, thermal throttling, leaking state) is non-stationary, and its
// mean is not a meaningful summary.
type ADFResult struct {
	// Statistic is the Dickey–Fuller t-statistic for the lagged level.
	// More negative means stronger evidence of stationarity.
	Statistic float64
	// Critical5 is the 5% critical value for the constant-only model.
	Critical5 float64
	// Lags is the augmentation order used.
	Lags int
}

// Stationary reports whether the unit-root null is rejected at 5% — the
// series mean-reverts.
func (r ADFResult) Stationary() bool { return r.Statistic < r.Critical5 }

// ADF runs the Augmented Dickey–Fuller test with a constant term and the
// given number of augmentation lags (0 = plain Dickey–Fuller; a common
// default is int(cbrt(n)) ). It regresses
//
//	Δy_t = α + β·y_{t−1} + Σ γ_i·Δy_{t−i} + ε_t
//
// and returns the t-statistic of β. Critical value −2.86 (5%, large n,
// constant-only model, MacKinnon).
func ADF(y []float64, lags int) (ADFResult, error) {
	n := len(y)
	if lags < 0 {
		return ADFResult{}, fmt.Errorf("stats: negative ADF lag order %d", lags)
	}
	if n < lags+10 {
		return ADFResult{}, fmt.Errorf("%w: ADF with %d lags needs ≥%d samples, have %d",
			ErrInsufficientData, lags, lags+10, n)
	}

	// Build the regression: rows t = lags+1 .. n-1.
	// Columns: [1, y_{t-1}, Δy_{t-1}, ..., Δy_{t-lags}].
	dy := make([]float64, n-1)
	for i := 1; i < n; i++ {
		dy[i-1] = y[i] - y[i-1]
	}
	rows := n - 1 - lags
	cols := 2 + lags
	X := make([][]float64, rows)
	target := make([]float64, rows)
	for r := 0; r < rows; r++ {
		t := r + lags + 1 // index into y for the dependent Δy_t = dy[t-1]
		row := make([]float64, cols)
		row[0] = 1
		row[1] = y[t-1]
		for l := 1; l <= lags; l++ {
			row[1+l] = dy[t-1-l]
		}
		X[r] = row
		target[r] = dy[t-1]
	}

	beta, se, err := olsWithSE(X, target)
	if err != nil {
		return ADFResult{}, fmt.Errorf("stats: ADF regression failed: %w", err)
	}
	if se[1] == 0 {
		return ADFResult{}, fmt.Errorf("stats: ADF regression degenerate (zero variance)")
	}
	return ADFResult{Statistic: beta[1] / se[1], Critical5: -2.86, Lags: lags}, nil
}

// olsWithSE solves ordinary least squares by normal equations with
// Gaussian elimination, returning coefficient estimates and their standard
// errors.
func olsWithSE(X [][]float64, y []float64) (beta, se []float64, err error) {
	rows := len(X)
	if rows == 0 {
		return nil, nil, fmt.Errorf("no rows")
	}
	cols := len(X[0])
	if rows <= cols {
		return nil, nil, fmt.Errorf("need more rows (%d) than columns (%d)", rows, cols)
	}

	// A = XᵀX (cols×cols), b = Xᵀy.
	A := make([][]float64, cols)
	for i := range A {
		A[i] = make([]float64, cols)
	}
	b := make([]float64, cols)
	for r := 0; r < rows; r++ {
		for i := 0; i < cols; i++ {
			b[i] += X[r][i] * y[r]
			for j := i; j < cols; j++ {
				A[i][j] += X[r][i] * X[r][j]
			}
		}
	}
	for i := 0; i < cols; i++ {
		for j := 0; j < i; j++ {
			A[i][j] = A[j][i]
		}
	}

	inv, err := invert(A)
	if err != nil {
		return nil, nil, err
	}
	beta = make([]float64, cols)
	for i := 0; i < cols; i++ {
		for j := 0; j < cols; j++ {
			beta[i] += inv[i][j] * b[j]
		}
	}

	// Residual variance → standard errors from the diagonal of (XᵀX)⁻¹σ².
	rss := 0.0
	for r := 0; r < rows; r++ {
		pred := 0.0
		for i := 0; i < cols; i++ {
			pred += X[r][i] * beta[i]
		}
		d := y[r] - pred
		rss += d * d
	}
	sigma2 := rss / float64(rows-cols)
	se = make([]float64, cols)
	for i := 0; i < cols; i++ {
		se[i] = math.Sqrt(sigma2 * inv[i][i])
	}
	return beta, se, nil
}

// invert returns the inverse of a small symmetric positive-definite matrix
// via Gauss–Jordan elimination with partial pivoting.
func invert(A [][]float64) ([][]float64, error) {
	n := len(A)
	// Augment with identity.
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, 2*n)
		copy(m[i], A[i])
		m[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-300 {
			return nil, fmt.Errorf("singular matrix")
		}
		m[col], m[pivot] = m[pivot], m[col]
		// Normalize and eliminate.
		p := m[col][col]
		for j := 0; j < 2*n; j++ {
			m[col][j] /= p
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col]
			if f == 0 {
				continue
			}
			for j := 0; j < 2*n; j++ {
				m[r][j] -= f * m[col][j]
			}
		}
	}
	inv := make([][]float64, n)
	for i := range inv {
		inv[i] = m[i][n:]
	}
	return inv, nil
}

// DefaultADFLags returns the common cube-root-of-n augmentation order.
func DefaultADFLags(n int) int {
	if n < 10 {
		return 0
	}
	return int(math.Cbrt(float64(n)))
}
