package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestWelfordMatchesBatch(t *testing.T) {
	stream := rng.New(11)
	var w Welford
	var xs []float64
	for i := 0; i < 10_000; i++ {
		v := stream.LogNormal(3, 1.2)
		w.Add(v)
		xs = append(xs, v)
	}
	if w.N() != len(xs) {
		t.Fatalf("N = %d, want %d", w.N(), len(xs))
	}
	if m, bm := w.Mean(), Mean(xs); !almostEqual(m, bm, 1e-9*math.Abs(bm)) {
		t.Errorf("mean = %v, batch %v", m, bm)
	}
	if v, bv := w.Variance(), Variance(xs); !almostEqual(v, bv, 1e-7*bv) {
		t.Errorf("variance = %v, batch %v", v, bv)
	}
	if w.Min() != Min(xs) || w.Max() != Max(xs) {
		t.Errorf("min/max = %v/%v, batch %v/%v", w.Min(), w.Max(), Min(xs), Max(xs))
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Min()) || !math.IsNaN(w.Max()) {
		t.Error("empty accumulator should report NaN")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Min() != 5 || w.Max() != 5 {
		t.Errorf("single sample: mean/min/max = %v/%v/%v, want 5", w.Mean(), w.Min(), w.Max())
	}
	if !math.IsNaN(w.Variance()) {
		t.Error("variance of one sample should be NaN")
	}
}

func TestLogHistogramErrorBound(t *testing.T) {
	const alpha = 0.01
	// Heavy-tailed data: the regime where equal-width histograms fail
	// and the log-bucketed sketch must still honour its bound.
	for name, gen := range map[string]func(*rng.Stream) float64{
		"lognormal": func(s *rng.Stream) float64 { return s.LogNormal(4, 1.5) },
		"pareto":    func(s *rng.Stream) float64 { return s.Pareto(1.5, 20) },
	} {
		h, err := NewLogHistogram(alpha)
		if err != nil {
			t.Fatal(err)
		}
		stream := rng.NewLabeled(7, name)
		var xs []float64
		for i := 0; i < 50_000; i++ {
			v := gen(stream)
			h.Add(v)
			xs = append(xs, v)
		}
		c := Sorted(xs)
		for _, p := range []float64{10, 50, 90, 95, 99, 99.9} {
			got := h.Quantile(p)
			// The sketch bound is relative to the order statistic at the
			// floor rank (it cannot interpolate inside a bucket).
			want := c[int(p/100*float64(len(c)-1))]
			if relErr := math.Abs(got-want) / want; relErr > alpha {
				t.Errorf("%s p%v: sketch %v vs exact %v (rel err %.4f > α=%v)", name, p, got, want, relErr, alpha)
			}
		}
	}
}

func TestLogHistogramNegativeAndZero(t *testing.T) {
	h, err := NewLogHistogram(0.01)
	if err != nil {
		t.Fatal(err)
	}
	// 100 negatives, 100 zeros, 100 positives.
	for i := 1; i <= 100; i++ {
		h.Add(-float64(i))
		h.Add(0)
		h.Add(float64(i))
	}
	if h.N() != 300 {
		t.Fatalf("N = %d, want 300", h.N())
	}
	if q := h.Quantile(50); q != 0 {
		t.Errorf("median = %v, want 0", q)
	}
	if q := h.Quantile(1); q >= 0 {
		t.Errorf("p1 = %v, want negative", q)
	}
	if q := h.Quantile(99); q <= 0 {
		t.Errorf("p99 = %v, want positive", q)
	}
	if got, want := h.Quantile(99), 98.0; math.Abs(got-want)/want > 0.05 {
		t.Errorf("p99 = %v, want ≈%v", got, want)
	}
}

func TestLogHistogramMemoryBounded(t *testing.T) {
	h, err := NewLogHistogram(0.01)
	if err != nil {
		t.Fatal(err)
	}
	stream := rng.New(3)
	for i := 0; i < 1_000_000; i++ {
		h.Add(stream.LogNormal(3, 2)) // spans many decades
	}
	// ~1400 buckets cover 1e-9..1e21 at α=1%; any growth beyond that
	// would mean bucket residency scales with N.
	if h.Buckets() > 2000 {
		t.Errorf("bucket count %d not bounded by dynamic range", h.Buckets())
	}
}

func TestLogHistogramQuantilesOrderIndependent(t *testing.T) {
	h, _ := NewLogHistogram(0.02)
	for _, v := range []float64{5, 1, 9, 3, 7} {
		h.Add(v)
	}
	qs := h.Quantiles(99, 50, 0)
	if !(qs[2] <= qs[1] && qs[1] <= qs[0]) {
		t.Errorf("quantiles out of order: %v", qs)
	}
	if h.Quantile(50) != qs[1] {
		t.Error("Quantile and Quantiles disagree")
	}
}

func TestNewLogHistogramValidation(t *testing.T) {
	for _, alpha := range []float64{0, 1, -0.1, 1.5} {
		if _, err := NewLogHistogram(alpha); err == nil {
			t.Errorf("alpha=%v accepted", alpha)
		}
	}
}

func TestWelfordMergeExact(t *testing.T) {
	stream := rng.New(23)
	var whole Welford
	parts := make([]Welford, 8)
	var xs []float64
	for i := 0; i < 40_000; i++ {
		v := stream.LogNormal(3, 1.4)
		whole.Add(v)
		parts[i%len(parts)].Add(v)
		xs = append(xs, v)
	}
	var merged Welford
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", merged.N(), whole.N())
	}
	if !almostEqual(merged.Mean(), whole.Mean(), 1e-9*math.Abs(whole.Mean())) {
		t.Errorf("merged mean = %v, whole %v", merged.Mean(), whole.Mean())
	}
	if !almostEqual(merged.Variance(), whole.Variance(), 1e-7*whole.Variance()) {
		t.Errorf("merged variance = %v, whole %v", merged.Variance(), whole.Variance())
	}
	if merged.Min() != Min(xs) || merged.Max() != Max(xs) {
		t.Errorf("merged min/max = %v/%v, batch %v/%v", merged.Min(), merged.Max(), Min(xs), Max(xs))
	}

	// Merging into an empty accumulator, and merging an empty one, are
	// both exact.
	var fromEmpty Welford
	fromEmpty.Merge(whole)
	fromEmpty.Merge(Welford{})
	if fromEmpty.N() != whole.N() || fromEmpty.Mean() != whole.Mean() {
		t.Errorf("empty-merge changed state: %v/%v", fromEmpty.N(), fromEmpty.Mean())
	}
}

// TestLogHistogramMergeErrorBound is the error-bound pin for mergeable
// sketches: quantiles of a merge of per-partition sketches must honour
// the same α bound, against the exact order statistics of the combined
// data, that a single sketch over all the data honours. This is what
// cross-run aggregate distributions rely on.
func TestLogHistogramMergeErrorBound(t *testing.T) {
	const alpha = 0.01
	const runs = 16
	merged, err := NewLogHistogram(alpha)
	if err != nil {
		t.Fatal(err)
	}
	var all []float64
	for run := 0; run < runs; run++ {
		h, err := NewLogHistogram(alpha)
		if err != nil {
			t.Fatal(err)
		}
		// Per-run distributions deliberately differ (shifting scale) so
		// the merge actually has to reconcile disjoint bucket ranges.
		stream := rng.NewLabeled(31, "merge-run")
		for i := 0; i < 5_000; i++ {
			v := stream.LogNormal(3+0.2*float64(run), 1.2)
			h.Add(v)
			all = append(all, v)
		}
		if err := merged.Merge(h); err != nil {
			t.Fatal(err)
		}
	}
	if merged.N() != len(all) {
		t.Fatalf("merged N = %d, want %d", merged.N(), len(all))
	}
	c := Sorted(all)
	for _, p := range []float64{10, 50, 90, 95, 99, 99.9} {
		got := merged.Quantile(p)
		want := c[int(p/100*float64(len(c)-1))]
		if relErr := math.Abs(got-want) / want; relErr > alpha {
			t.Errorf("merged p%v: sketch %v vs exact %v (rel err %.4f > α=%v)", p, got, want, relErr, alpha)
		}
	}

	// Accuracy mismatch must be rejected: the buckets would not align.
	other, err := NewLogHistogram(0.02)
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(other); err == nil {
		t.Error("merge across different accuracies accepted")
	}
}
