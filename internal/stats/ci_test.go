package stats

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
)

func TestZScore95(t *testing.T) {
	// The paper: "For a confidence level of 95%, z equals 1.96."
	if got := zScore(0.95); math.Abs(got-1.959964) > 1e-4 {
		t.Errorf("z(0.95) = %v, want ≈1.96", got)
	}
	if got := zScore(0.99); math.Abs(got-2.575829) > 1e-4 {
		t.Errorf("z(0.99) = %v, want ≈2.576", got)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.9599639845},
		{0.025, -1.9599639845},
		{0.84134474606, 1.0},
		{0.99, 2.3263478740},
		{1e-10, -6.3613409024},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileEdge(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Error("NormalQuantile(0) should be -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Error("NormalQuantile(1) should be +Inf")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) {
		t.Error("NormalQuantile(-0.1) should be NaN")
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for p := 0.001; p < 1; p += 0.001 {
		z := NormalQuantile(p)
		if back := NormalCDF(z); math.Abs(back-p) > 1e-9 {
			t.Fatalf("CDF(Quantile(%v)) = %v", p, back)
		}
	}
}

func TestNonParametricCIBrackets(t *testing.T) {
	// 1..25: median 13; Eq.1 floor((25-1.96*5)/2)=floor(7.6)=7;
	// Eq.2 ceil(1+(25+9.8)/2)=ceil(18.4)=19. So CI = [x(7), x(19)] = [7, 19].
	x := make([]float64, 25)
	for i := range x {
		x[i] = float64(i + 1)
	}
	iv, err := NonParametricCI(x, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Point != 13 {
		t.Errorf("median = %v, want 13", iv.Point)
	}
	if iv.Lower != 7 || iv.Upper != 19 {
		t.Errorf("CI = [%v, %v], want [7, 19]", iv.Lower, iv.Upper)
	}
	// The paper: "The sample's median should be within the CI bounds."
	if iv.Point < iv.Lower || iv.Point > iv.Upper {
		t.Error("median outside its own CI")
	}
}

func TestNonParametricCIRequiresTenSamples(t *testing.T) {
	_, err := NonParametricCI([]float64{1, 2, 3}, 0.95)
	if !errors.Is(err, ErrInsufficientData) {
		t.Errorf("want ErrInsufficientData, got %v", err)
	}
}

func TestParametricCI(t *testing.T) {
	// n=100, mean 50, sd 10 → half-width 1.96*10/10 = 1.96.
	s := rng.New(20)
	x := make([]float64, 100)
	for i := range x {
		x[i] = s.Normal(50, 10)
	}
	iv, err := ParametricCI(x, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	wantHalf := zScore(0.95) * StdDev(x) / 10
	gotHalf := (iv.Upper - iv.Lower) / 2
	if math.Abs(gotHalf-wantHalf) > 1e-9 {
		t.Errorf("half-width = %v, want %v", gotHalf, wantHalf)
	}
	if iv.Point != Mean(x) {
		t.Errorf("point = %v, want mean %v", iv.Point, Mean(x))
	}
}

func TestParametricCIInsufficient(t *testing.T) {
	_, err := ParametricCI([]float64{1}, 0.95)
	if !errors.Is(err, ErrInsufficientData) {
		t.Errorf("want ErrInsufficientData, got %v", err)
	}
}

func TestIntervalOverlaps(t *testing.T) {
	a := Interval{Lower: 1, Upper: 3}
	b := Interval{Lower: 2, Upper: 4}
	c := Interval{Lower: 3.5, Upper: 5}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("adjacent overlapping intervals reported disjoint")
	}
	if a.Overlaps(c) {
		t.Error("disjoint intervals reported overlapping")
	}
	if !b.Overlaps(c) {
		t.Error("touching intervals should overlap")
	}
}

func TestHalfWidthPct(t *testing.T) {
	iv := Interval{Point: 100, Lower: 99, Upper: 101.5}
	if got := iv.HalfWidthPct(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("HalfWidthPct = %v, want 1.5", got)
	}
}

func TestCoverageOfNonParametricCI(t *testing.T) {
	// Empirical coverage check: the 95% median CI should contain the true
	// median (0 for a standard normal) in roughly 95% of repetitions.
	s := rng.New(77)
	const reps = 400
	const n = 50
	hits := 0
	for r := 0; r < reps; r++ {
		x := make([]float64, n)
		for i := range x {
			x[i] = s.Normal(0, 1)
		}
		iv, err := NonParametricCI(x, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Lower <= 0 && 0 <= iv.Upper {
			hits++
		}
	}
	cov := float64(hits) / reps
	if cov < 0.90 || cov > 0.995 {
		t.Errorf("empirical coverage = %v, want ≈0.95", cov)
	}
}
