package rng

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with the same seed diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams with different seeds produced %d identical draws", same)
	}
}

func TestLabeledStreamsIndependent(t *testing.T) {
	a := NewLabeled(7, "interarrival")
	b := NewLabeled(7, "service")
	if a.Uint64() == b.Uint64() {
		t.Error("labeled streams from the same seed are correlated")
	}
	// Same label, same seed must reproduce.
	c := NewLabeled(7, "interarrival")
	a2 := NewLabeled(7, "interarrival")
	if c.Uint64() != a2.Uint64() {
		t.Error("identical labels did not reproduce the stream")
	}
}

func TestSplitProducesIndependentStream(t *testing.T) {
	parent := New(99)
	child := parent.Split()
	if parent.Uint64() == child.Uint64() {
		t.Error("split child mirrors parent")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ≈0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	seen := make(map[int]int)
	for i := 0; i < 60000; i++ {
		v := s.Intn(6)
		if v < 0 || v >= 6 {
			t.Fatalf("Intn(6) = %d out of range", v)
		}
		seen[v]++
	}
	for v := 0; v < 6; v++ {
		if seen[v] < 9000 || seen[v] > 11000 {
			t.Errorf("Intn(6) value %d appeared %d times out of 60000, want ≈10000", v, seen[v])
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	s := New(6)
	const rate = 0.25 // mean 4
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exp(rate)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-4) > 0.05 {
		t.Errorf("Exp mean = %v, want ≈4", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(7)
	const n = 200000
	const wantMean, wantSD = 10.0, 3.0
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(wantMean, wantSD)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-wantMean) > 0.05 {
		t.Errorf("Normal mean = %v, want ≈%v", mean, wantMean)
	}
	if math.Abs(sd-wantSD) > 0.05 {
		t.Errorf("Normal stddev = %v, want ≈%v", sd, wantSD)
	}
}

func TestLogNormalMedian(t *testing.T) {
	s := New(8)
	const n = 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = s.LogNormal(2, 0.5)
	}
	// Median of lognormal(mu, sigma) is exp(mu).
	median := quickSelectMedian(vals)
	want := math.Exp(2)
	if math.Abs(median-want)/want > 0.02 {
		t.Errorf("LogNormal median = %v, want ≈%v", median, want)
	}
}

func quickSelectMedian(v []float64) float64 {
	// Sort a copy; the previous insertion sort was O(n²) and dominated
	// the package's test time at n ≈ 100k.
	c := append([]float64(nil), v...)
	sort.Float64s(c)
	return c[len(c)/2]
}

func TestParetoSupport(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		v := s.Pareto(2, 5)
		if v < 5 {
			t.Fatalf("Pareto(2,5) = %v below scale", v)
		}
	}
}

func TestGeneralizedParetoZeroShapeIsExponential(t *testing.T) {
	s := New(10)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.GeneralizedPareto(0, 2, 0)
	}
	mean := sum / n
	if math.Abs(mean-2) > 0.05 {
		t.Errorf("GPD(0,2,0) mean = %v, want ≈2 (exponential)", mean)
	}
}

func TestGeneralizedParetoLocationShift(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		if v := s.GeneralizedPareto(100, 5, 0.1); v < 100 {
			t.Fatalf("GPD located at 100 produced %v", v)
		}
	}
}

func TestPoissonSmallMean(t *testing.T) {
	s := New(12)
	const n = 200000
	const mean = 3.5
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.Poisson(mean)
	}
	got := float64(sum) / n
	if math.Abs(got-mean) > 0.05 {
		t.Errorf("Poisson(%v) mean = %v", mean, got)
	}
}

func TestPoissonLargeMean(t *testing.T) {
	s := New(13)
	const n = 100000
	const mean = 200.0
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.Poisson(mean)
	}
	got := float64(sum) / n
	if math.Abs(got-mean) > 1 {
		t.Errorf("Poisson(%v) mean = %v", mean, got)
	}
}

func TestPoissonNonPositiveMean(t *testing.T) {
	s := New(14)
	if got := s.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	if got := s.Poisson(-1); got != 0 {
		t.Errorf("Poisson(-1) = %d, want 0", got)
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(15)
	z := NewZipf(s, 1000, 1.0)
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[500] {
		t.Errorf("Zipf not rank-skewed: c0=%d c10=%d c500=%d", counts[0], counts[10], counts[500])
	}
	// Rank 0 should hold roughly 1/H(1000) ≈ 13% of draws.
	frac := float64(counts[0]) / n
	if frac < 0.10 || frac > 0.17 {
		t.Errorf("Zipf rank-0 fraction = %v, want ≈0.13", frac)
	}
}

func TestDiscreteRespectsWeights(t *testing.T) {
	s := New(16)
	d := NewDiscrete(s, []float64{1, 0, 3})
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[d.Draw()]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight outcome drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.8 || ratio > 3.2 {
		t.Errorf("weight ratio = %v, want ≈3", ratio)
	}
}

func TestDiscretePanics(t *testing.T) {
	s := New(17)
	for _, weights := range [][]float64{nil, {0, 0}, {1, -1}} {
		func() {
			defer func() { recover() }()
			NewDiscrete(s, weights)
			t.Errorf("NewDiscrete(%v) did not panic", weights)
		}()
	}
}

// Property: Exp is always non-negative and finite for any positive rate.
func TestPropertyExpFinite(t *testing.T) {
	f := func(seed uint64, rateRaw uint8) bool {
		rate := float64(rateRaw%100) + 0.5
		s := New(seed)
		for i := 0; i < 100; i++ {
			v := s.Exp(rate)
			if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Intn(n) is always within [0, n).
func TestPropertyIntnInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Uint64()
	}
}

func BenchmarkExp(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Exp(1e5)
	}
}

func BenchmarkZipfDraw(b *testing.B) {
	s := New(1)
	z := NewZipf(s, 1<<20, 0.99)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Draw()
	}
}
