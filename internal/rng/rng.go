// Package rng provides deterministic, splittable random number streams and
// the sampling distributions used throughout the testbed simulation.
//
// Every stochastic component of the simulation (inter-arrival times, service
// times, network jitter, workload key popularity) draws from its own Stream,
// derived from the experiment seed and a component label. Streams are
// independent by construction, so adding a new consumer of randomness never
// perturbs the draws seen by existing components — a property the paper's
// methodology depends on when comparing configurations ("reset the
// environment between runs", §III).
package rng

import (
	"math"
	"math/bits"
)

// splitmix64 advances a 64-bit state and returns a well-mixed output. It is
// used both as a seeding function and as the stream-splitting function.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream is a deterministic pseudo-random stream (xoshiro256**). It is not
// safe for concurrent use; the simulation is single-threaded by design.
type Stream struct {
	s [4]uint64

	// cached spare normal variate from the polar method
	hasSpare bool
	spare    float64
}

// New returns a stream seeded from seed. Distinct seeds give independent
// streams.
func New(seed uint64) *Stream {
	st := &Stream{}
	sm := seed
	for i := range st.s {
		st.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start from the all-zero state.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return st
}

// NewLabeled returns a stream derived from a base seed and a label, so that
// components can obtain independent streams by name.
func NewLabeled(seed uint64, label string) *Stream {
	h := seed
	for _, b := range []byte(label) {
		h ^= uint64(b)
		h *= 0x100000001b3 // FNV-1a prime
	}
	return New(h)
}

// Split derives a new independent stream from s, advancing s once.
func (s *Stream) Split() *Stream {
	state := s.Uint64()
	return New(state)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (s *Stream) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	hi, lo := bits.Mul64(s.Uint64(), bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			hi, lo = bits.Mul64(s.Uint64(), bound)
		}
	}
	return int(hi)
}

// Exp returns an exponentially distributed variate with the given rate
// (events per unit). The mean of the returned variate is 1/rate.
func (s *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	u := s.Float64()
	// 1-u is in (0,1], so the log is finite.
	return -math.Log(1-u) / rate
}

// Normal returns a normally distributed variate with the given mean and
// standard deviation, using the Marsaglia polar method.
func (s *Stream) Normal(mean, stddev float64) float64 {
	if s.hasSpare {
		s.hasSpare = false
		return mean + stddev*s.spare
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(q) / q)
		s.spare = v * f
		s.hasSpare = true
		return mean + stddev*u*f
	}
}

// LogNormal returns a log-normally distributed variate where the underlying
// normal has parameters mu and sigma.
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Gamma returns a Gamma(shape, scale) variate with mean shape·scale,
// using the Marsaglia–Tsang squeeze method (with the standard boost for
// shape < 1). Gamma inter-arrival times are how bursty arrival processes
// are parameterized: a coefficient of variation above 1 clusters
// requests into bursts, below 1 regularizes them.
func (s *Stream) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Gamma with non-positive parameter")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) · U^(1/a).
		u := s.Float64()
		return s.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := s.Normal(0, 1)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := s.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Weibull returns a Weibull(shape, scale) variate by inversion, with
// mean scale·Γ(1+1/shape). Shape < 1 gives a heavy-tailed inter-arrival
// distribution (long gaps separating clusters of requests); shape > 1
// approaches regular pacing.
func (s *Stream) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Weibull with non-positive parameter")
	}
	u := s.Float64()
	// 1-u is in (0,1], so the log is finite.
	return scale * math.Pow(-math.Log(1-u), 1/shape)
}

// Pareto returns a Pareto(shape, scale) variate with support [scale, ∞).
func (s *Stream) Pareto(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Pareto with non-positive parameter")
	}
	u := s.Float64()
	return scale / math.Pow(1-u, 1/shape)
}

// GeneralizedPareto returns a GPD(location, scale, shape) variate. The ETC
// workload characterization of Facebook's Memcached pools models value sizes
// with a generalized Pareto tail (Atikoglu et al., SIGMETRICS'12), which is
// why the workload package needs it.
func (s *Stream) GeneralizedPareto(location, scale, shape float64) float64 {
	u := s.Float64()
	if math.Abs(shape) < 1e-12 {
		return location - scale*math.Log(1-u)
	}
	return location + scale*(math.Pow(1-u, -shape)-1)/shape
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and normal approximation with rejection
// for large means.
func (s *Stream) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= s.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// PTRS-style transformed rejection would be ideal; a clamped normal
	// approximation is adequate for mean ≥ 30 in this simulation.
	for {
		x := s.Normal(mean, math.Sqrt(mean))
		if x >= 0 {
			return int(x + 0.5)
		}
	}
}

// Zipf draws ranks in [0, n) following a Zipf distribution with exponent
// alpha > 0 (rank 0 most popular). It precomputes the CDF once, so repeated
// draws are O(log n).
type Zipf struct {
	cdf []float64
	s   *Stream
}

// NewZipf builds a Zipf sampler over n ranks with exponent alpha.
func NewZipf(s *Stream, n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("rng: Zipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, s: s}
}

// Draw returns the next rank.
func (z *Zipf) Draw() int {
	u := z.s.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Discrete samples from an explicit finite distribution given by weights.
type Discrete struct {
	cdf []float64
	s   *Stream
}

// NewDiscrete builds a sampler over len(weights) outcomes with the given
// relative weights. Weights must be non-negative with a positive sum.
func NewDiscrete(s *Stream, weights []float64) *Discrete {
	if len(weights) == 0 {
		panic("rng: Discrete with no outcomes")
	}
	cdf := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("rng: Discrete with negative weight")
		}
		sum += w
		cdf[i] = sum
	}
	if sum <= 0 {
		panic("rng: Discrete with zero total weight")
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Discrete{cdf: cdf, s: s}
}

// Draw returns the next outcome index.
func (d *Discrete) Draw() int {
	u := d.s.Float64()
	lo, hi := 0, len(d.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if d.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
