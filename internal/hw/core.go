package hw

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Timing constants the paper quotes for the client-side overhead chain
// (§V-A): "a query must experience at least a C-state transition
// (2us - 200us), a DVFS transition (~30us), and a context switch (~25us)
// before the workload generator is able to capture the timestamp".
const (
	// DVFSRampLatency is the legacy DVFS transition time: after a wake
	// under a powersave governor the core runs at minimum frequency for
	// this long before reaching full speed (Gendler et al. [15]).
	DVFSRampLatency = 30 * time.Microsecond

	// CtxSwitchCost is the scheduler cost to run a blocked thread after
	// its wake-up event (IRQ) arrives.
	CtxSwitchCost = 25 * time.Microsecond

	// IRQDeliveryCost is the interrupt delivery and softirq dispatch cost
	// paid on every network receive regardless of sleep state.
	IRQDeliveryCost = 1 * time.Microsecond

	// tickPeriod is the scheduling-clock interval on non-tickless kernels
	// (CONFIG_HZ=250, Ubuntu's default).
	tickPeriod = 4 * time.Millisecond

	// smtPenalty stretches work executed while the SMT sibling thread is
	// simultaneously busy: two hardware threads sharing a physical core
	// each run slower than a thread owning the core outright.
	smtPenalty = 1.25

	// pstateEpoch is the interval at which a powersave governor re-evaluates
	// the core's P-state from its recent utilization.
	pstateEpoch = 10 * time.Millisecond

	// pstateTargetUtil is the utilization at which powersave grants full
	// frequency; below it the frequency scales down proportionally.
	pstateTargetUtil = 0.70

	// uncoreParkDelay is how long a socket must be fully idle before a
	// dynamic uncore clocks down.
	uncoreParkDelay = 200 * time.Microsecond

	// uncoreWakeLatency is the extra first-wake cost when the uncore has
	// clocked down.
	uncoreWakeLatency = 15 * time.Microsecond
)

// Core is one hardware thread of a simulated machine. It is a state machine
// over virtual time: busy until a known instant, or idle in a C-state. The
// zero Core is not usable; obtain cores from a Machine.
type Core struct {
	machine *Machine
	id      int
	sibling *Core // SMT sibling thread, nil when SMT is off

	gov  *idleGovernor
	idle bool
	// viaSleep distinguishes a real governor-chosen idle (entered through
	// Sleep) from the initial boot idle, which must not pollute the
	// governor's history or the wake statistics.
	viaSleep bool
	// state is the C-state currently occupied while idle.
	state CState
	// idleSince is when the core last went idle.
	idleSince sim.Time
	// busyUntil is the end of the latest scheduled work.
	busyUntil sim.Time
	// rampDone is when the DVFS ramp after the last wake completes; work
	// before this instant runs at minimum frequency under powersave.
	rampDone sim.Time
	// P-state epoch tracking (powersave governor): the operating frequency
	// for the current epoch is derived from the previous epoch's busy
	// fraction, modelling intel_pstate's utilization-driven selection.
	epochIdx     int64
	epochBusy    time.Duration
	epochFreqGHz float64

	// Recent-load tracking for the menu governor's performance multiplier:
	// an EWMA of the busy fraction over successive sleep-to-sleep cycles.
	loadEWMA     float64
	sleepMark    sim.Time
	busySnapshot time.Duration

	// Statistics.
	wakeCount   map[string]int
	totalIdle   time.Duration
	totalBusy   time.Duration
	weightedPow float64 // idle time × relative power, for energy reports
	idleGaps    []time.Duration
}

// IdleGaps returns the recorded idle-period durations when the machine's
// idle-gap diagnostic is enabled.
func (c *Core) IdleGaps() []time.Duration { return c.idleGaps }

// ID returns the hardware thread index within its machine.
func (c *Core) ID() int { return c.id }

// Idle reports whether the core is currently idle.
func (c *Core) Idle() bool { return c.idle }

// CurrentCState returns the occupied idle state name ("C0" when busy).
func (c *Core) CurrentCState() string {
	if !c.idle {
		return "C0"
	}
	return c.state.Name
}

// BusyUntil returns the completion instant of the core's latest work.
func (c *Core) BusyUntil() sim.Time { return c.busyUntil }

// WakeCounts returns per-C-state wake counts accumulated since the last
// run reset. The returned map is live; callers must not modify it.
func (c *Core) WakeCounts() map[string]int { return c.wakeCount }

// nextTickIn returns the distance to the next periodic tick, or 0 on
// tickless kernels.
func (c *Core) nextTickIn(now sim.Time) time.Duration {
	if c.machine.cfg.Tickless {
		return 0
	}
	elapsed := time.Duration(now) % tickPeriod
	return tickPeriod - elapsed
}

// Sleep marks the core idle at now. timerHint is the time until the next
// known deadline for this core (0 when unknown); a block-wait workload
// generator passes the distance to its next scheduled send, mirroring the
// timer the kernel's menu governor consults.
func (c *Core) Sleep(now sim.Time, timerHint time.Duration) {
	if c.idle {
		return
	}
	if now < c.busyUntil {
		panic(fmt.Sprintf("hw: core %d put to sleep at %v while busy until %v", c.id, now, c.busyUntil))
	}
	// Update the recent-load estimate over the completed sleep-to-sleep
	// cycle before choosing the next state.
	if cycle := now.Sub(c.sleepMark); cycle > 0 {
		busy := c.totalBusy - c.busySnapshot
		load := float64(busy) / float64(cycle)
		if load > 1 {
			load = 1
		}
		c.loadEWMA = 0.7*c.loadEWMA + 0.3*load
	}
	c.sleepMark = now
	c.busySnapshot = c.totalBusy

	c.idle = true
	c.viaSleep = true
	c.idleSince = now
	c.state = c.gov.choose(timerHint, c.nextTickIn(now), c.loadEWMA)
	c.machine.noteCoreIdle(now)
}

// WakeLatency returns the cost of bringing the core to C0 at now without
// performing the wake: the C-state exit latency, scaled by the per-run
// hardware jitter, plus the uncore ramp when a dynamic uncore has parked.
// A busy or polling core wakes for free.
func (c *Core) WakeLatency(now sim.Time) time.Duration {
	if !c.idle {
		return 0
	}
	lat := time.Duration(float64(c.state.ExitLatency) * c.machine.wakeScale)
	lat += c.machine.uncoreWakePenalty(now)
	return lat
}

// Wake transitions an idle core to C0 at now and returns the instant the
// core is usable (now + exit latency). Waking a busy core returns
// max(now, busyUntil).
func (c *Core) Wake(now sim.Time) sim.Time {
	if !c.idle {
		if c.busyUntil > now {
			return c.busyUntil
		}
		return now
	}
	idleDur := now.Sub(c.idleSince)
	if c.viaSleep {
		c.gov.record(idleDur)
		c.totalIdle += idleDur
		c.weightedPow += idleDur.Seconds() * c.state.RelativePower
		c.wakeCount[c.state.Name]++
		if c.machine.recordIdleGaps {
			c.idleGaps = append(c.idleGaps, idleDur)
		}
		c.viaSleep = false
	}

	lat := c.WakeLatency(now)
	c.machine.noteCoreWake(now)
	c.idle = false
	ready := now.Add(lat)
	c.busyUntil = ready

	// Under a powersave governor the core restarts at minimum frequency
	// and ramps; under performance it is already at full speed. A wake
	// from C0 (poll) keeps the frequency hot.
	if c.machine.cfg.Governor == GovernorPowersave && c.state.Name != "C0" {
		c.rampDone = ready.Add(time.Duration(float64(DVFSRampLatency) * c.machine.wakeScale))
	} else {
		c.rampDone = ready
	}
	return ready
}

// rollEpoch advances the P-state epoch to the one containing t, deriving
// the new operating frequency from the last epoch's busy fraction. Skipped
// (fully idle) epochs drop the frequency to minimum.
func (c *Core) rollEpoch(t sim.Time) {
	if c.machine.cfg.Governor != GovernorPowersave {
		return
	}
	idx := int64(t) / int64(pstateEpoch)
	if idx == c.epochIdx {
		return
	}
	cfg := c.machine.cfg
	// Attribute accumulated busy time across the epochs elapsed since the
	// last roll (a single long execution may span several epochs).
	span := time.Duration(idx-c.epochIdx) * pstateEpoch
	util := float64(c.epochBusy) / float64(span)
	if util > 1 {
		util = 1
	}
	frac := util / pstateTargetUtil
	if frac > 1 {
		frac = 1
	}
	// powersave scales within [min, nominal]; it grants turbo only under
	// sustained near-saturation, unlike the performance governor.
	ceiling := cfg.NominalFreqGHz
	if cfg.Turbo && util > 0.9 {
		ceiling = cfg.TurboFreqGHz
	}
	c.epochFreqGHz = cfg.MinFreqGHz + (ceiling-cfg.MinFreqGHz)*frac
	c.epochIdx = idx
	c.epochBusy = 0
}

// speedAt returns the execution speed multiplier (relative to nominal
// frequency) at instant t.
func (c *Core) speedAt(t sim.Time) float64 {
	cfg := c.machine.cfg
	var ghz float64
	switch {
	case t < c.rampDone:
		ghz = cfg.MinFreqGHz
	case cfg.Governor == GovernorPowersave:
		ghz = c.epochFreqGHz
	default:
		ghz = cfg.MaxFreqGHz()
	}
	return ghz / cfg.NominalFreqGHz * c.machine.freqScale
}

// Execute schedules work of the given nominal duration (its cost at
// nominal frequency with an idle sibling) starting at start. The core must
// be awake and free by start. It returns the completion time, stretching
// the work across the DVFS ramp and applying the SMT contention penalty
// when the sibling thread is busy over the same span.
func (c *Core) Execute(start sim.Time, nominal time.Duration) sim.Time {
	if c.idle {
		panic(fmt.Sprintf("hw: Execute on sleeping core %d at %v", c.id, start))
	}
	if start < c.busyUntil {
		start = c.busyUntil
	}
	c.rollEpoch(start)
	remaining := nominal
	if c.sibling != nil && !c.sibling.idle && c.sibling.busyUntil > start {
		remaining = time.Duration(float64(remaining) * smtPenalty)
	}

	t := start
	// Portion executed during the post-wake ramp at minimum frequency.
	if t < c.rampDone {
		slowSpeed := c.speedAt(t)
		window := c.rampDone.Sub(t)
		capacity := time.Duration(float64(window) * slowSpeed)
		if remaining <= capacity {
			t = t.Add(time.Duration(float64(remaining) / slowSpeed))
			remaining = 0
		} else {
			remaining -= capacity
			t = c.rampDone
		}
	}
	if remaining > 0 {
		t = t.Add(time.Duration(float64(remaining) / c.speedAt(t)))
	}
	c.totalBusy += t.Sub(start)
	c.epochBusy += t.Sub(start)
	c.busyUntil = t
	return t
}

// Utilization returns the busy fraction of the elapsed (busy+idle
// accounted) time since the last run reset.
func (c *Core) Utilization() float64 {
	total := c.totalBusy + c.totalIdle
	if total == 0 {
		return 0
	}
	return float64(c.totalBusy) / float64(total)
}
