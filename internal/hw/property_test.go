package hw

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
)

// Property: execution time is never shorter than the nominal work divided
// by the fastest possible speed, and never negative.
func TestPropertyExecuteBounded(t *testing.T) {
	f := func(seed uint64, workUs uint16, sleepUs uint32) bool {
		m, err := NewMachine("p", 1, LPConfig())
		if err != nil {
			return false
		}
		m.ResetRun(rng.New(seed))
		c := m.Core(0)
		work := time.Duration(workUs%5000+1) * time.Microsecond
		idle := time.Duration(sleepUs%10_000_000) * time.Nanosecond

		ready := c.Wake(0)
		end := c.Execute(ready, time.Microsecond)
		c.Sleep(end, idle)
		wakeAt := end.Add(idle)
		ready = c.Wake(wakeAt)
		done := c.Execute(ready, work)
		elapsed := done.Sub(ready)

		// Fastest possible: turbo with max positive jitter (≈+2%).
		fastest := time.Duration(float64(work) * SkylakeNominalGHz / SkylakeTurboGHz / 1.02)
		// Slowest possible: everything at minimum frequency with jitter.
		slowest := time.Duration(float64(work)*SkylakeNominalGHz/SkylakeMinGHz*1.05) + time.Microsecond
		return elapsed >= fastest && elapsed <= slowest
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: allowing deeper C-states never makes a wake cheaper than the
// same scenario with shallower states only (same seed ⇒ same jitter).
func TestPropertyDeeperStatesNeverCheaperWakes(t *testing.T) {
	f := func(seed uint64, idleMs uint8) bool {
		idle := time.Duration(idleMs%50+1) * time.Millisecond
		lat := func(maxState string) time.Duration {
			cfg := LPConfig()
			cfg.MaxCState = maxState
			cfg.Tickless = true // menu: honours hints, deterministic depth
			m, err := NewMachine("p", 1, cfg)
			if err != nil {
				return -1
			}
			m.ResetRun(rng.New(seed))
			c := m.Core(0)
			ready := c.Wake(0)
			end := c.Execute(ready, time.Microsecond)
			c.Sleep(end, idle)
			return c.WakeLatency(end.Add(idle))
		}
		c1 := lat("C1")
		c1e := lat("C1E")
		c6 := lat("C6")
		return c1 >= 0 && c1 <= c1e && c1e <= c6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a machine's wake counts equal its sleep count, and utilization
// stays in [0,1], across arbitrary work/idle schedules.
func TestPropertyAccountingConsistent(t *testing.T) {
	f := func(seed uint64, steps []uint16) bool {
		if len(steps) == 0 {
			return true
		}
		if len(steps) > 64 {
			steps = steps[:64]
		}
		m, err := NewMachine("p", 1, LPConfig())
		if err != nil {
			return false
		}
		m.ResetRun(rng.New(seed))
		c := m.Core(0)
		now := sim.Time(0)
		sleeps := 0
		for _, s := range steps {
			work := time.Duration(s%200+1) * time.Microsecond
			idle := time.Duration(s/4+1) * time.Microsecond
			ready := c.Wake(now)
			end := c.Execute(ready, work)
			c.Sleep(end, idle)
			sleeps++
			now = end.Add(idle)
		}
		c.Wake(now)
		total := 0
		for _, n := range c.WakeCounts() {
			total += n
		}
		u := c.Utilization()
		return total == sleeps && u >= 0 && u <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: identical seeds yield identical machine behaviour (the
// foundation of the repository's reproducibility claim).
func TestPropertyMachineDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		run := func() time.Duration {
			m, err := NewMachine("p", 2, LPConfig())
			if err != nil {
				return -1
			}
			m.ResetRun(rng.New(seed))
			c := m.Core(0)
			now := sim.Time(0)
			var acc time.Duration
			for i := 0; i < 20; i++ {
				ready := c.Wake(now)
				end := c.Execute(ready, 7*time.Microsecond)
				acc += end.Sub(now)
				c.Sleep(end, 300*time.Microsecond)
				now = end.Add(300 * time.Microsecond)
			}
			return acc
		}
		return run() == run()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
