package hw

import (
	"time"
)

// CState describes one processor idle state of the Skylake table the paper
// uses (§IV-C: "Skylake-based processors support 4 C-states C0, C1, C1E
// and C6"). Exit latencies follow the intel_idle driver's Skylake-SP table;
// the paper quotes the 2 µs – 200 µs range for C-state transitions.
type CState struct {
	Name string
	// ExitLatency is the time to wake the core back to C0.
	ExitLatency time.Duration
	// TargetResidency is the minimum idle period for which entering the
	// state saves energy; the idle governor will not pick the state for
	// predicted idles shorter than this.
	TargetResidency time.Duration
	// RelativePower is the core's power draw in this state relative to
	// active (C0 = 1.0). Used only for the energy accounting reports.
	RelativePower float64
}

// SkylakeCStates is the platform C-state table, shallowest first.
var SkylakeCStates = []CState{
	{Name: "C0", ExitLatency: 0, TargetResidency: 0, RelativePower: 1.00},
	{Name: "C1", ExitLatency: 2 * time.Microsecond, TargetResidency: 2 * time.Microsecond, RelativePower: 0.30},
	{Name: "C1E", ExitLatency: 10 * time.Microsecond, TargetResidency: 20 * time.Microsecond, RelativePower: 0.15},
	{Name: "C6", ExitLatency: 133 * time.Microsecond, TargetResidency: 600 * time.Microsecond, RelativePower: 0.02},
}

// CStateByName returns the platform state with the given name.
func CStateByName(name string) (CState, bool) {
	for _, s := range SkylakeCStates {
		if s.Name == name {
			return s, true
		}
	}
	return CState{}, false
}

// enabledStates returns the platform states up to and including max.
func enabledStates(max string) []CState {
	var out []CState
	for _, s := range SkylakeCStates {
		out = append(out, s)
		if s.Name == max {
			break
		}
	}
	return out
}

// idleGovernor selects the C-state for each idle period. Two strategies
// model the two Linux cpuidle governors:
//
//   - menu (tickless kernels, the server baseline in Table II): predicts
//     the idle duration from the next-timer hint and the recent idle
//     history, then picks the deepest enabled state whose target residency
//     fits the prediction.
//
//   - ladder (periodic-tick kernels — both client configurations in
//     Table II have Tickless off): climbs one state deeper after
//     consecutive long-enough idles and demotes after a too-short one. On
//     the request/response pattern of a block-wait workload generator
//     (short response waits alternating with long pacing idles), the
//     ladder periodically climbs into C6 and the next response pays the
//     full 133 µs exit — the deep-sleep measurement penalty of §V-A.
type idleGovernor struct {
	states []CState
	ladder bool

	// menu state.
	history [8]time.Duration
	n       int
	idx     int

	// ladder state.
	depth        int
	promoteCount int
}

// ladderPromoteThreshold is how many consecutive successful residencies the
// ladder needs before climbing one state deeper.
const ladderPromoteThreshold = 6

func newIdleGovernor(maxState string, ladder bool) *idleGovernor {
	return &idleGovernor{states: enabledStates(maxState), ladder: ladder}
}

// record notes an observed idle duration for future predictions.
func (g *idleGovernor) record(idle time.Duration) {
	g.history[g.idx] = idle
	g.idx = (g.idx + 1) % len(g.history)
	if g.n < len(g.history) {
		g.n++
	}
	if g.ladder {
		g.recordLadder(idle)
	}
}

func (g *idleGovernor) recordLadder(idle time.Duration) {
	cur := g.states[g.depth]
	if idle >= cur.TargetResidency {
		g.promoteCount++
		next := g.depth + 1
		if g.promoteCount >= ladderPromoteThreshold && next < len(g.states) &&
			idle >= g.states[next].TargetResidency {
			g.depth = next
			g.promoteCount = 0
		}
	} else {
		// Paid a too-deep sleep: back off immediately.
		if g.depth > 0 {
			g.depth--
		}
		g.promoteCount = 0
	}
}

// typicalIdle estimates the recent idle pattern like the Linux menu
// governor's get_typical_interval: the mean of the recorded history after
// discarding the largest observation (a single long outlier must not push
// the core into a deep state).
//
// Note the history only contains *actual idle periods*: a worker draining
// a queued burst never sleeps, so back-to-back arrivals do not appear
// here. This is why a bursty (LP-client-driven) arrival process, whose
// idles are the long inter-burst gaps, reads as "long typical idle" and
// sends server workers into C1E, while a smooth (HP-driven) process at the
// same rate produces short queueing-compressed idles and stays shallow —
// the paper's Figure 3 mechanism.
func (g *idleGovernor) typicalIdle() (time.Duration, bool) {
	if g.n == 0 {
		return 0, false
	}
	if g.n == 1 {
		return g.history[0], true
	}
	maxIdx := 0
	for i := 1; i < g.n; i++ {
		if g.history[i] > g.history[maxIdx] {
			maxIdx = i
		}
	}
	var sum time.Duration
	for i := 0; i < g.n; i++ {
		if i == maxIdx {
			continue
		}
		sum += g.history[i]
	}
	return sum / time.Duration(g.n-1), true
}

// menuLoadThreshold is the recent busy fraction above which the menu
// governor penalizes deep states (Linux menu's performance multiplier:
// a loaded CPU should not pay long exit latencies).
const menuLoadThreshold = 0.42

// choose picks the C-state for an idle period. timerHint is the time until
// the next known deadline (0 means no deadline is known). tickBound caps
// the prediction on non-tickless kernels, where the periodic tick will end
// the idle period regardless. load is the core's recent busy fraction.
func (g *idleGovernor) choose(timerHint, tickBound time.Duration, load float64) CState {
	if g.ladder {
		// The ladder ignores timer hints; only the periodic tick bounds it
		// (no point entering a state whose residency exceeds the tick).
		d := g.depth
		for d > 0 && tickBound > 0 && g.states[d].TargetResidency > tickBound {
			d--
		}
		return g.states[d]
	}
	predicted := time.Duration(1<<62 - 1)
	if timerHint > 0 {
		predicted = timerHint
	}
	if typ, ok := g.typicalIdle(); ok && typ < predicted {
		predicted = typ
	}
	if tickBound > 0 && tickBound < predicted {
		predicted = tickBound
	}
	// Performance multiplier: on a loaded core a state must promise twice
	// its nominal residency before it is worth the exit latency. This is
	// what keeps a busy server in shallow states under smooth high-rate
	// arrivals while letting bursty arrivals (longer inter-burst idles)
	// still reach C1E — the differential behind the paper's Figure 3.
	residencyScale := time.Duration(1)
	if load > menuLoadThreshold {
		residencyScale = 2
	}
	best := g.states[0]
	for _, s := range g.states[1:] {
		if s.TargetResidency*residencyScale <= predicted {
			best = s
		}
	}
	return best
}
