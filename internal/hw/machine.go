package hw

import (
	"fmt"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
)

// Machine is a simulated server-class machine: a set of hardware threads
// under one hardware Config, with socket-level state (dynamic uncore). The
// paper's testbed machines are 2-socket, 20-core, 40-thread Skylake systems
// (§IV-A); the experiments pin work to one socket, so a Machine models the
// sockets the workload actually touches.
type Machine struct {
	name string
	cfg  Config

	cores []*Core

	// Socket-level dynamic uncore state.
	idleCores      int
	allIdleSince   sim.Time
	uncoreParked   bool
	uncoreWakes    int
	wakeScale      float64 // per-run jitter on exit latencies
	freqScale      float64 // per-run jitter on effective frequency
	physicalCores  int
	recordIdleGaps bool
}

// SetRecordIdleGaps enables the per-core idle-gap diagnostic, which keeps
// every idle-period duration for offline analysis (e.g. explaining which
// C-states an arrival pattern induces).
func (m *Machine) SetRecordIdleGaps(on bool) { m.recordIdleGaps = on }

// AllIdleGaps concatenates the recorded idle gaps of all cores.
func (m *Machine) AllIdleGaps() []time.Duration {
	var out []time.Duration
	for _, c := range m.cores {
		out = append(out, c.idleGaps...)
	}
	return out
}

// NewMachine builds a machine with the given number of physical cores under
// cfg. With SMT enabled each physical core exposes two hardware threads
// (thread i and i+physical), matching Linux's enumeration on the testbed.
func NewMachine(name string, physicalCores int, cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if physicalCores < 1 {
		return nil, fmt.Errorf("hw: machine needs ≥1 core, got %d", physicalCores)
	}
	m := &Machine{
		name:          name,
		cfg:           cfg,
		wakeScale:     1,
		freqScale:     1,
		physicalCores: physicalCores,
	}
	threads := physicalCores
	if cfg.SMT {
		threads *= 2
	}
	m.cores = make([]*Core, threads)
	for i := range m.cores {
		m.cores[i] = &Core{
			machine:      m,
			id:           i,
			gov:          newIdleGovernor(cfg.MaxCState, !cfg.Tickless),
			idle:         true,
			state:        SkylakeCStates[0], // boot in C0-poll until first sleep decision
			wakeCount:    make(map[string]int),
			epochFreqGHz: cfg.MinFreqGHz,
		}
	}
	if cfg.SMT {
		for i := 0; i < physicalCores; i++ {
			m.cores[i].sibling = m.cores[i+physicalCores]
			m.cores[i+physicalCores].sibling = m.cores[i]
		}
	}
	m.idleCores = len(m.cores)
	return m, nil
}

// Name returns the machine's label.
func (m *Machine) Name() string { return m.name }

// Config returns the machine's hardware configuration.
func (m *Machine) Config() Config { return m.cfg }

// NumThreads returns the number of hardware threads.
func (m *Machine) NumThreads() int { return len(m.cores) }

// NumPhysicalCores returns the number of physical cores.
func (m *Machine) NumPhysicalCores() int { return m.physicalCores }

// Core returns hardware thread i.
func (m *Machine) Core(i int) *Core {
	return m.cores[i]
}

// ResetRun re-initializes all run-scoped state — C-state histories, busy
// schedules, statistics — and draws fresh per-run hardware jitter from the
// stream. This models the paper's methodology of resetting the environment
// between runs so that samples are independent (§III): each run starts from
// a cold, slightly different hardware state (thermal, calibration), which
// is what makes repeated runs vary at all.
func (m *Machine) ResetRun(stream *rng.Stream) {
	// Exit latencies vary run to run (board temperature, voltage-regulator
	// state, firmware calibration); effective frequency wobbles well under
	// 1%. The wake-latency spread is what makes untuned-client runs need
	// many repetitions at low load (Table IV's LP rows).
	m.wakeScale = stream.LogNormal(0, 0.20)
	m.freqScale = stream.Normal(1, 0.004)
	if m.freqScale < 0.97 {
		m.freqScale = 0.97
	}
	m.uncoreParked = false
	m.uncoreWakes = 0
	m.allIdleSince = 0
	m.idleCores = len(m.cores)
	for _, c := range m.cores {
		c.gov = newIdleGovernor(m.cfg.MaxCState, !m.cfg.Tickless)
		c.idle = true
		c.viaSleep = false
		c.state = SkylakeCStates[0]
		c.idleSince = 0
		c.busyUntil = 0
		c.rampDone = 0
		c.wakeCount = make(map[string]int)
		c.totalIdle = 0
		c.totalBusy = 0
		c.weightedPow = 0
		c.epochIdx = 0
		c.epochBusy = 0
		c.epochFreqGHz = m.cfg.MinFreqGHz
		c.loadEWMA = 0
		c.sleepMark = 0
		c.busySnapshot = 0
		c.idleGaps = nil
	}
}

// noteCoreIdle tracks socket idleness for the dynamic uncore model.
func (m *Machine) noteCoreIdle(now sim.Time) {
	m.idleCores++
	if m.idleCores == len(m.cores) {
		m.allIdleSince = now
	}
}

// noteCoreWake tracks socket wake-ups for the dynamic uncore model.
func (m *Machine) noteCoreWake(now sim.Time) {
	if m.idleCores == len(m.cores) && m.cfg.UncoreDynamic {
		// First core to wake clears a parked uncore.
		if now.Sub(m.allIdleSince) >= uncoreParkDelay {
			m.uncoreWakes++
		}
	}
	m.idleCores--
}

// uncoreWakePenalty returns the extra wake latency when the dynamic uncore
// has clocked down (the whole socket has been idle beyond the park delay).
func (m *Machine) uncoreWakePenalty(now sim.Time) time.Duration {
	if !m.cfg.UncoreDynamic {
		return 0
	}
	if m.idleCores == len(m.cores) && now.Sub(m.allIdleSince) >= uncoreParkDelay {
		return time.Duration(float64(uncoreWakeLatency) * m.wakeScale)
	}
	return 0
}

// UncoreRXPenalty returns the extra NIC-to-LLC delivery latency paid on
// every network receive when the uncore frequency is dynamic: a
// down-clocked uncore slows the DMA and cache-injection path (this is why
// latency tuning guides pin the uncore, as the paper's HP and server
// configurations do via MSR 0x620).
func (m *Machine) UncoreRXPenalty() time.Duration {
	if !m.cfg.UncoreDynamic {
		return 0
	}
	return time.Duration(6e3 * m.wakeScale) // ≈6µs
}

// EnergyProxy returns a unitless energy figure over a run of the given
// length: full power for every core-second, minus the savings earned in
// recorded C-state residencies. A core that busy-polls (idle=poll, or a
// spinning generator) records no sleep and therefore saves nothing — the
// LP/HP trade-off the paper discusses (§VI): LP saves energy, HP buys
// timing accuracy with it.
func (m *Machine) EnergyProxy(runLength time.Duration) float64 {
	full := runLength.Seconds() * float64(len(m.cores))
	saved := 0.0
	for _, c := range m.cores {
		saved += c.totalIdle.Seconds() - c.weightedPow // idle × (1 − relPower)
	}
	e := full - saved
	if e < 0 {
		e = 0
	}
	return e
}

// IdleDistribution aggregates per-C-state wake counts across cores.
func (m *Machine) IdleDistribution() map[string]int {
	out := make(map[string]int)
	for _, c := range m.cores {
		for s, n := range c.wakeCount {
			out[s] += n
		}
	}
	return out
}
