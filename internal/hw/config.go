// Package hw models the client- and server-side hardware configuration
// knobs the paper studies (§IV-C): C-states, frequency driver and governor,
// turbo mode, simultaneous multithreading, uncore frequency, and the
// tickless kernel setting — and the microsecond-scale timing overheads they
// inject into a request's path.
//
// The model is a per-core state machine over virtual time. A core is either
// busy (executing work whose duration is scaled by the current frequency)
// or idle (resident in a C-state chosen by a menu-style idle governor).
// Waking from idle costs the C-state's exit latency; with a powersave
// governor the core additionally restarts at its minimum frequency and
// ramps up, which stretches the first microseconds of work after a wake —
// exactly the overhead chain the paper describes for a query timestamp
// ("a C-state transition (2us - 200us), a DVFS transition (~30us), and a
// context switch (~25us)", §V-A).
package hw

import (
	"fmt"
)

// FreqDriver selects the CPUFreq driver, the kernel component that
// communicates frequency/voltage settings to the hardware (§IV-C).
type FreqDriver int

const (
	// DriverIntelPstate is the intel_pstate driver (hardware-managed
	// P-states). The paper's LP client uses it.
	DriverIntelPstate FreqDriver = iota
	// DriverACPICpufreq is the acpi-cpufreq driver. The paper's HP client
	// and server baseline use it.
	DriverACPICpufreq
)

func (d FreqDriver) String() string {
	switch d {
	case DriverIntelPstate:
		return "intel_pstate"
	case DriverACPICpufreq:
		return "acpi-cpufreq"
	}
	return fmt.Sprintf("FreqDriver(%d)", int(d))
}

// Governor selects the CPUFreq governor, the heuristic that decides the
// operating frequency (§IV-C).
type Governor int

const (
	// GovernorPowersave tracks load: a core that just woke from idle runs
	// at its minimum frequency and ramps up (legacy DVFS transition ≈30 µs,
	// Gendler et al. [15]).
	GovernorPowersave Governor = iota
	// GovernorPerformance pins the maximum frequency at all times.
	GovernorPerformance
)

func (g Governor) String() string {
	switch g {
	case GovernorPowersave:
		return "powersave"
	case GovernorPerformance:
		return "performance"
	}
	return fmt.Sprintf("Governor(%d)", int(g))
}

// Config is the full hardware configuration of one machine — one column of
// the paper's Table II.
type Config struct {
	Name string

	// MaxCState is the deepest C-state the idle loop may enter: one of
	// "C0", "C1", "C1E", "C6". "C0" means idle=poll — the core busy-polls
	// and never pays an exit latency.
	MaxCState string

	Driver   FreqDriver
	Governor Governor

	// Turbo allows the clock to exceed the nominal frequency when few
	// cores are active (MSR 0x1A0 in the paper's methodology).
	Turbo bool

	// SMT exposes two hardware threads per physical core.
	SMT bool

	// UncoreDynamic lets the uncore (LLC, IO) clock down when the socket
	// idles; the first wake then pays an extra uncore ramp (MSR 0x620).
	// When false the uncore frequency is fixed.
	UncoreDynamic bool

	// Tickless omits the periodic scheduling-clock interrupt on idle
	// cores (nohz). With Tickless false, a periodic tick bounds idle
	// residency and briefly wakes idle cores.
	Tickless bool

	// Frequency points in GHz.
	MinFreqGHz     float64
	NominalFreqGHz float64
	TurboFreqGHz   float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch c.MaxCState {
	case "C0", "C1", "C1E", "C6":
	default:
		return fmt.Errorf("hw: unknown max C-state %q", c.MaxCState)
	}
	if c.MinFreqGHz <= 0 || c.NominalFreqGHz < c.MinFreqGHz {
		return fmt.Errorf("hw: invalid frequency range min=%v nominal=%v", c.MinFreqGHz, c.NominalFreqGHz)
	}
	if c.Turbo && c.TurboFreqGHz < c.NominalFreqGHz {
		return fmt.Errorf("hw: turbo frequency %v below nominal %v", c.TurboFreqGHz, c.NominalFreqGHz)
	}
	return nil
}

// MaxFreqGHz returns the highest reachable frequency under this config.
func (c Config) MaxFreqGHz() float64 {
	if c.Turbo {
		return c.TurboFreqGHz
	}
	return c.NominalFreqGHz
}

// The frequency points of the paper's testbed: Intel Xeon Silver 4114
// (Skylake), nominal 2.2 GHz, minimum 0.8 GHz, max turbo 3.0 GHz (§IV-A).
const (
	SkylakeMinGHz     = 0.8
	SkylakeNominalGHz = 2.2
	SkylakeTurboGHz   = 3.0
)

// LPConfig returns the paper's low-power client configuration (Table II):
// the system default a configuration-agnostic user would run — all C-states
// enabled, intel_pstate powersave, turbo on, SMT on, dynamic uncore,
// periodic tick.
func LPConfig() Config {
	return Config{
		Name:           "LP",
		MaxCState:      "C6",
		Driver:         DriverIntelPstate,
		Governor:       GovernorPowersave,
		Turbo:          true,
		SMT:            true,
		UncoreDynamic:  true,
		Tickless:       false,
		MinFreqGHz:     SkylakeMinGHz,
		NominalFreqGHz: SkylakeNominalGHz,
		TurboFreqGHz:   SkylakeTurboGHz,
	}
}

// HPConfig returns the paper's high-performance client configuration
// (Table II): C-states off (idle=poll), acpi-cpufreq performance, turbo on,
// SMT on, fixed uncore, periodic tick.
func HPConfig() Config {
	return Config{
		Name:           "HP",
		MaxCState:      "C0",
		Driver:         DriverACPICpufreq,
		Governor:       GovernorPerformance,
		Turbo:          true,
		SMT:            true,
		UncoreDynamic:  false,
		Tickless:       false,
		MinFreqGHz:     SkylakeMinGHz,
		NominalFreqGHz: SkylakeNominalGHz,
		TurboFreqGHz:   SkylakeTurboGHz,
	}
}

// ServerBaselineConfig returns the paper's server-side baseline (Table II):
// C0+C1 only, acpi-cpufreq performance, turbo off, SMT off, fixed uncore,
// tickless on — chosen empirically to avoid high variability.
func ServerBaselineConfig() Config {
	return Config{
		Name:           "server-baseline",
		MaxCState:      "C1",
		Driver:         DriverACPICpufreq,
		Governor:       GovernorPerformance,
		Turbo:          false,
		SMT:            false,
		UncoreDynamic:  false,
		Tickless:       true,
		MinFreqGHz:     SkylakeMinGHz,
		NominalFreqGHz: SkylakeNominalGHz,
		TurboFreqGHz:   SkylakeTurboGHz,
	}
}

// WithSMT returns a copy of c with SMT set — the server-side feature under
// study in Figures 2 and 4.
func (c Config) WithSMT(on bool) Config {
	c.SMT = on
	if on {
		c.Name += "+SMT"
	}
	return c
}

// WithMaxCState returns a copy of c with the deepest allowed C-state set —
// used for the server-side C1E studies in Figures 3 and 4.
func (c Config) WithMaxCState(state string) Config {
	c.MaxCState = state
	c.Name += "+" + state
	return c
}
