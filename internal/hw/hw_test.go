package hw

import (
	"math"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
)

func mustMachine(t *testing.T, name string, cores int, cfg Config) *Machine {
	t.Helper()
	m, err := NewMachine(name, cores, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigPresetsMatchTableII(t *testing.T) {
	lp := LPConfig()
	if lp.MaxCState != "C6" || lp.Driver != DriverIntelPstate || lp.Governor != GovernorPowersave ||
		!lp.Turbo || !lp.SMT || !lp.UncoreDynamic || lp.Tickless {
		t.Errorf("LP preset deviates from Table II: %+v", lp)
	}
	hp := HPConfig()
	if hp.MaxCState != "C0" || hp.Driver != DriverACPICpufreq || hp.Governor != GovernorPerformance ||
		!hp.Turbo || !hp.SMT || hp.UncoreDynamic || hp.Tickless {
		t.Errorf("HP preset deviates from Table II: %+v", hp)
	}
	srv := ServerBaselineConfig()
	if srv.MaxCState != "C1" || srv.Governor != GovernorPerformance || srv.Turbo || srv.SMT ||
		srv.UncoreDynamic || !srv.Tickless {
		t.Errorf("server preset deviates from Table II: %+v", srv)
	}
	for _, cfg := range []Config{lp, hp, srv} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := LPConfig()
	bad.MaxCState = "C7"
	if bad.Validate() == nil {
		t.Error("unknown C-state accepted")
	}
	bad = LPConfig()
	bad.MinFreqGHz = 0
	if bad.Validate() == nil {
		t.Error("zero min frequency accepted")
	}
	bad = LPConfig()
	bad.TurboFreqGHz = 1.0
	if bad.Validate() == nil {
		t.Error("turbo below nominal accepted")
	}
}

func TestConfigModifiers(t *testing.T) {
	c := ServerBaselineConfig().WithSMT(true)
	if !c.SMT {
		t.Error("WithSMT(true) did not enable SMT")
	}
	c = ServerBaselineConfig().WithMaxCState("C1E")
	if c.MaxCState != "C1E" {
		t.Error("WithMaxCState did not apply")
	}
}

func TestCStateTableOrdering(t *testing.T) {
	for i := 1; i < len(SkylakeCStates); i++ {
		prev, cur := SkylakeCStates[i-1], SkylakeCStates[i]
		if cur.ExitLatency <= prev.ExitLatency {
			t.Errorf("%s exit latency not deeper than %s", cur.Name, prev.Name)
		}
		if cur.TargetResidency < prev.TargetResidency {
			t.Errorf("%s residency shallower than %s", cur.Name, prev.Name)
		}
		if cur.RelativePower >= prev.RelativePower {
			t.Errorf("%s power not lower than %s", cur.Name, prev.Name)
		}
	}
	// Paper: transitions span 2 µs – 200 µs.
	if SkylakeCStates[1].ExitLatency != 2*time.Microsecond {
		t.Errorf("C1 exit = %v, want 2µs", SkylakeCStates[1].ExitLatency)
	}
	c6, ok := CStateByName("C6")
	if !ok || c6.ExitLatency < 100*time.Microsecond || c6.ExitLatency > 200*time.Microsecond {
		t.Errorf("C6 exit = %v, want within 100–200µs", c6.ExitLatency)
	}
	if _, ok := CStateByName("C9"); ok {
		t.Error("CStateByName invented a state")
	}
}

func TestMachineThreadTopology(t *testing.T) {
	smtOff := mustMachine(t, "s", 10, ServerBaselineConfig())
	if smtOff.NumThreads() != 10 {
		t.Errorf("SMT-off threads = %d, want 10", smtOff.NumThreads())
	}
	if smtOff.Core(0).sibling != nil {
		t.Error("SMT-off core has a sibling")
	}
	smtOn := mustMachine(t, "s2", 10, ServerBaselineConfig().WithSMT(true))
	if smtOn.NumThreads() != 20 {
		t.Errorf("SMT-on threads = %d, want 20", smtOn.NumThreads())
	}
	if smtOn.Core(0).sibling != smtOn.Core(10) {
		t.Error("SMT sibling pairing broken")
	}
	if smtOn.NumPhysicalCores() != 10 {
		t.Errorf("physical cores = %d, want 10", smtOn.NumPhysicalCores())
	}
}

func TestHPCoreWakesFree(t *testing.T) {
	m := mustMachine(t, "hp", 1, HPConfig())
	m.ResetRun(rng.New(1))
	c := m.Core(0)
	c.Wake(0)
	end := c.Execute(0, 10*time.Microsecond)
	c.Sleep(end, 0)
	// HP: MaxCState C0 → governor can only pick C0 (poll) → zero wake cost.
	lat := c.WakeLatency(end.Add(time.Millisecond))
	if lat != 0 {
		t.Errorf("HP wake latency = %v, want 0 (idle=poll)", lat)
	}
	if got := c.CurrentCState(); got != "C0" {
		t.Errorf("HP idle state = %s, want C0", got)
	}
}

func TestLPDeepSleepAfterLongIdle(t *testing.T) {
	m := mustMachine(t, "lp", 1, LPConfig())
	m.ResetRun(rng.New(2))
	c := m.Core(0)
	// Train the governor with long idles. The ladder needs
	// ladderPromoteThreshold successes per step, so give it three steps'
	// worth of cycles.
	now := sim.Time(0)
	for i := 0; i < 3*ladderPromoteThreshold+3; i++ {
		ready := c.Wake(now)
		end := c.Execute(ready, 5*time.Microsecond)
		c.Sleep(end, 2*time.Millisecond) // long timer hint
		now = end.Add(2 * time.Millisecond)
	}
	if got := c.CurrentCState(); got != "C6" {
		t.Errorf("after long idles state = %s, want C6", got)
	}
	lat := c.WakeLatency(now)
	// C6 exit 133µs × run jitter (±~30%).
	if lat < 80*time.Microsecond || lat > 250*time.Microsecond {
		t.Errorf("C6 wake latency = %v, want ≈133µs", lat)
	}
}

func TestShortHintPicksShallowState(t *testing.T) {
	// Menu governor (tickless) honours the timer hint.
	cfg := LPConfig()
	cfg.Tickless = true
	m := mustMachine(t, "lp", 1, cfg)
	m.ResetRun(rng.New(3))
	c := m.Core(0)
	ready := c.Wake(0)
	end := c.Execute(ready, time.Microsecond)
	c.Sleep(end, 5*time.Microsecond) // next deadline in 5µs
	if got := c.CurrentCState(); got != "C1" {
		t.Errorf("idle state with 5µs hint = %s, want C1 (residency 2µs ≤ 5µs < 20µs)", got)
	}
}

func TestGovernorHistoryBoundsDepth(t *testing.T) {
	// Bursty phase: many short idles. Even with a long timer hint the
	// governor's history should keep the core shallow.
	m := mustMachine(t, "lp", 1, LPConfig())
	m.ResetRun(rng.New(4))
	c := m.Core(0)
	now := sim.Time(0)
	for i := 0; i < 10; i++ {
		ready := c.Wake(now)
		end := c.Execute(ready, time.Microsecond)
		c.Sleep(end, 0)
		now = end.Add(8 * time.Microsecond) // short actual idles
	}
	c.Wake(now)
	end := c.Execute(now, time.Microsecond)
	c.Sleep(end, 10*time.Millisecond) // long hint, but history says short
	if got := c.CurrentCState(); got == "C6" {
		t.Error("governor ignored short-idle history and picked C6")
	}
}

func TestDVFSRampStretchesWork(t *testing.T) {
	// LP (powersave): work right after a deep wake runs at 0.8 GHz versus
	// a 3.0 GHz ceiling, so 10µs of nominal work takes ~2.2/0.8 = 2.75×
	// longer while ramping.
	lp := LPConfig()
	lp.UncoreDynamic = false // isolate the DVFS effect
	lp.Tickless = true       // menu governor honours the long timer hint
	m := mustMachine(t, "lp", 1, lp)
	m.ResetRun(rng.New(5))
	m.wakeScale = 1 // pin jitter for exact arithmetic
	m.freqScale = 1
	c := m.Core(0)
	ready := c.Wake(0)
	end := c.Execute(ready, time.Microsecond)
	c.Sleep(end, 2*time.Millisecond)
	wakeAt := end.Add(2 * time.Millisecond)
	ready = c.Wake(wakeAt)

	start := ready
	done := c.Execute(start, 8*time.Microsecond)
	slow := done.Sub(start)
	// At min frequency the speed factor is 0.8/2.2 ≈ 0.364, so 8µs of
	// nominal work takes 22µs, all within the 30µs ramp window.
	want := time.Duration(float64(8*time.Microsecond) * lp.NominalFreqGHz / lp.MinFreqGHz)
	if math.Abs(float64(slow-want)) > float64(100*time.Nanosecond) {
		t.Errorf("ramped execution took %v, want ≈%v", slow, want)
	}

	// After the ramp, powersave runs at the utilization-derived P-state.
	// Saturate an epoch so the next epoch grants full frequency.
	epochStart := sim.Time((int64(c.rampDone)/int64(pstateEpoch) + 1) * int64(pstateEpoch))
	c.busyUntil = epochStart
	c.Execute(epochStart, pstateEpoch) // fully busy epoch
	postStart := c.BusyUntil()
	done2 := c.Execute(postStart, 8*time.Microsecond)
	fast := done2.Sub(postStart)
	if fast >= slow {
		t.Errorf("full-utilization work (%v) not faster than post-wake minimum-frequency work (%v)", fast, slow)
	}
}

func TestPerformanceGovernorNoRamp(t *testing.T) {
	m := mustMachine(t, "hp", 1, HPConfig())
	m.ResetRun(rng.New(6))
	m.freqScale = 1
	c := m.Core(0)
	ready := c.Wake(0)
	end := c.Execute(ready, time.Microsecond)
	c.Sleep(end, time.Millisecond)
	wake := c.Wake(end.Add(time.Millisecond))
	done := c.Execute(wake, 10*time.Microsecond)
	got := done.Sub(wake)
	ratio := float64(SkylakeNominalGHz) / float64(SkylakeTurboGHz)
	want := time.Duration(float64(10*time.Microsecond) * ratio)
	if math.Abs(float64(got-want)) > float64(100*time.Nanosecond) {
		t.Errorf("performance-governor work took %v, want %v (no ramp)", got, want)
	}
}

func TestTurboOffRunsAtNominal(t *testing.T) {
	m := mustMachine(t, "srv", 1, ServerBaselineConfig())
	m.ResetRun(rng.New(7))
	m.freqScale = 1
	c := m.Core(0)
	wake := c.Wake(0)
	done := c.Execute(wake, 10*time.Microsecond)
	if got := done.Sub(wake); got != 10*time.Microsecond {
		t.Errorf("turbo-off nominal work took %v, want 10µs", got)
	}
}

func TestSMTContentionPenalty(t *testing.T) {
	cfg := ServerBaselineConfig().WithSMT(true)
	m := mustMachine(t, "srv", 2, cfg)
	m.ResetRun(rng.New(8))
	m.freqScale = 1
	a, b := m.Core(0), m.Core(2) // siblings on physical core 0
	if a.sibling != b {
		t.Fatal("topology: expected cores 0 and 2 to be siblings")
	}
	// Run b busy over the window, then measure a's work.
	wb := b.Wake(0)
	b.Execute(wb, 100*time.Microsecond)
	wa := a.Wake(0)
	done := a.Execute(wa, 10*time.Microsecond)
	got := done.Sub(wa)
	want := time.Duration(float64(10*time.Microsecond) * smtPenalty)
	if math.Abs(float64(got-want)) > float64(100*time.Nanosecond) {
		t.Errorf("SMT-contended work took %v, want %v", got, want)
	}
	// An idle sibling imposes no penalty.
	c, d := m.Core(1), m.Core(3)
	_ = d
	wc := c.Wake(0)
	done = c.Execute(wc, 10*time.Microsecond)
	if got := done.Sub(wc); got != 10*time.Microsecond {
		t.Errorf("uncontended SMT work took %v, want 10µs", got)
	}
}

func TestUncoreParkPenalty(t *testing.T) {
	lp := LPConfig()
	m := mustMachine(t, "lp", 2, lp)
	m.ResetRun(rng.New(9))
	m.wakeScale = 1
	// Sleep all cores (machine starts all-idle at time 0), wait past the
	// park delay, then check the first wake pays the uncore penalty.
	now := sim.Time(0).Add(uncoreParkDelay + time.Millisecond)
	c := m.Core(0)
	// Train: core is in boot C0 state, so wake latency is just uncore.
	lat := c.WakeLatency(now)
	if lat != uncoreWakeLatency {
		t.Errorf("parked-uncore wake = %v, want %v", lat, uncoreWakeLatency)
	}
	// Fixed uncore: no penalty.
	hp := mustMachine(t, "hp", 2, HPConfig())
	hp.ResetRun(rng.New(10))
	hp.wakeScale = 1
	if lat := hp.Core(0).WakeLatency(now); lat != 0 {
		t.Errorf("fixed-uncore wake = %v, want 0", lat)
	}
}

func TestSleepWhileBusyPanics(t *testing.T) {
	m := mustMachine(t, "x", 1, HPConfig())
	m.ResetRun(rng.New(11))
	c := m.Core(0)
	w := c.Wake(0)
	c.Execute(w, 10*time.Microsecond)
	defer func() {
		if recover() == nil {
			t.Error("Sleep during busy window did not panic")
		}
	}()
	c.Sleep(w, 0)
}

func TestExecuteWhileIdlePanics(t *testing.T) {
	m := mustMachine(t, "x", 1, HPConfig())
	m.ResetRun(rng.New(12))
	defer func() {
		if recover() == nil {
			t.Error("Execute on idle core did not panic")
		}
	}()
	m.Core(0).Execute(0, time.Microsecond)
}

func TestResetRunClearsState(t *testing.T) {
	m := mustMachine(t, "x", 2, LPConfig())
	m.ResetRun(rng.New(13))
	c := m.Core(0)
	w := c.Wake(0)
	end := c.Execute(w, 50*time.Microsecond)
	c.Sleep(end, time.Millisecond)
	c.Wake(end.Add(time.Millisecond))

	m.ResetRun(rng.New(14))
	if got := c.Utilization(); got != 0 {
		t.Errorf("utilization after reset = %v, want 0", got)
	}
	if len(c.WakeCounts()) != 0 {
		t.Errorf("wake counts after reset = %v, want empty", c.WakeCounts())
	}
	if !c.Idle() {
		t.Error("core not idle after reset")
	}
	if c.BusyUntil() != 0 {
		t.Errorf("busyUntil after reset = %v, want 0", c.BusyUntil())
	}
}

func TestRunJitterVariesAcrossRuns(t *testing.T) {
	m := mustMachine(t, "x", 1, LPConfig())
	stream := rng.New(15)
	seen := make(map[float64]bool)
	for i := 0; i < 10; i++ {
		m.ResetRun(stream)
		seen[m.wakeScale] = true
	}
	if len(seen) < 9 {
		t.Errorf("wake jitter collided too often: %d distinct of 10", len(seen))
	}
}

func TestWakeRecordsStatistics(t *testing.T) {
	m := mustMachine(t, "x", 1, LPConfig())
	m.ResetRun(rng.New(16))
	c := m.Core(0)
	now := sim.Time(0)
	// Enough long idles for the ladder to reach energy-saving states.
	for i := 0; i < 20; i++ {
		w := c.Wake(now)
		end := c.Execute(w, 10*time.Microsecond)
		c.Sleep(end, 100*time.Microsecond)
		now = end.Add(100 * time.Microsecond)
	}
	c.Wake(now)
	total := 0
	for _, n := range c.WakeCounts() {
		total += n
	}
	// 21 Wake calls, but the first is the boot wake, which is not a
	// C-state exit and must not be counted.
	if total != 20 {
		t.Errorf("recorded %d wakes, want 20", total)
	}
	if c.Utilization() <= 0 || c.Utilization() >= 1 {
		t.Errorf("utilization = %v, want in (0,1)", c.Utilization())
	}
	e := m.EnergyProxy(time.Duration(now))
	if e <= 0 {
		t.Error("energy proxy not positive after activity")
	}
	// Sleeping must save energy versus an always-on machine.
	if full := time.Duration(now).Seconds() * float64(m.NumThreads()); e >= full {
		t.Errorf("energy %v not below always-on %v despite C-state residency", e, full)
	}
	if len(m.IdleDistribution()) == 0 {
		t.Error("idle distribution empty after wakes")
	}
}

func TestTicklessBoundsIdleChoice(t *testing.T) {
	// With Tickless=false (clients in Table II), an idle beginning just
	// before the next 4ms tick must not enter C6 even with a long hint.
	lp := LPConfig() // Tickless=false
	m := mustMachine(t, "x", 1, lp)
	m.ResetRun(rng.New(17))
	c := m.Core(0)
	w := c.Wake(0)
	end := c.Execute(w, time.Microsecond)
	// Move to just before a tick boundary: tick at 4ms.
	preTick := sim.Time(4*time.Millisecond - 10*time.Microsecond)
	if end > preTick {
		t.Fatalf("setup: work ran past the tick boundary (%v)", end)
	}
	c.busyUntil = preTick
	c.Sleep(preTick, 10*time.Millisecond)
	if got := c.CurrentCState(); got == "C6" {
		t.Error("idle straddling a near tick entered C6 despite tick bound")
	}

	// Tickless machine with the same pattern may go deep.
	lpTickless := LPConfig()
	lpTickless.Tickless = true
	m2 := mustMachine(t, "y", 1, lpTickless)
	m2.ResetRun(rng.New(17))
	c2 := m2.Core(0)
	w2 := c2.Wake(0)
	end2 := c2.Execute(w2, time.Microsecond)
	c2.busyUntil = end2
	c2.Sleep(preTick, 10*time.Millisecond)
	if got := c2.CurrentCState(); got != "C6" {
		t.Errorf("tickless idle with long hint = %s, want C6", got)
	}
}

func TestNewMachineErrors(t *testing.T) {
	if _, err := NewMachine("x", 0, HPConfig()); err == nil {
		t.Error("zero cores accepted")
	}
	bad := HPConfig()
	bad.MaxCState = "bogus"
	if _, err := NewMachine("x", 1, bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestDriverAndGovernorStrings(t *testing.T) {
	if DriverIntelPstate.String() != "intel_pstate" || DriverACPICpufreq.String() != "acpi-cpufreq" {
		t.Error("driver names wrong")
	}
	if GovernorPowersave.String() != "powersave" || GovernorPerformance.String() != "performance" {
		t.Error("governor names wrong")
	}
	if FreqDriver(9).String() == "" || Governor(9).String() == "" {
		t.Error("unknown values should still render")
	}
}
